package blas

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

// Sblat1 builds the test driver for the REAL level-1 routines, modelled
// on LAPACK's TESTING/sblat1.f: for several (n, incx, incy)
// combinations it runs every routine on fresh copies of deterministic
// data and emits the scalar results and mutated-vector checksums as the
// program's result stream. The driver module only *declares* the BLAS
// routines; it is linked against the libblas image at build time.
func Sblat1(seed int64) *ir.Module {
	const vlen = 40
	rng := seededData(seed)
	xsrc := make([]float64, vlen)
	ysrc := make([]float64, vlen)
	for i := 0; i < vlen; i++ {
		xsrc[i] = 2*rng() - 1
		ysrc[i] = 2*rng() - 1
	}

	m := ir.NewModule("sblat1")
	gX := m.AddGlobal(&ir.Global{Name: "xsrc", Size: vlen * 8, InitF64: xsrc})
	gY := m.AddGlobal(&ir.Global{Name: "ysrc", Size: vlen * 8, InitF64: ysrc})

	// Declarations of the library routines (resolved at link time).
	decl := func(name string, ret ir.Type, params ...*ir.Arg) *ir.Func {
		f := &ir.Func{Name: name, File: "sblat1/" + name, RetType: ret, Module: m}
		for i, p := range params {
			p.Index = i
			p.Fn = f
		}
		f.Params = params
		m.Funcs = append(m.Funcs, f)
		return f
	}
	dIsamax := decl("isamax", ir.I64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
	dSasum := decl("sasum", ir.F64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
	dSaxpy := decl("saxpy", ir.Void, ir.Param("n", ir.I64), ir.Param("sa", ir.F64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
	dScopy := decl("scopy", ir.Void, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
	dSdot := decl("sdot", ir.F64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
	dSnrm2 := decl("snrm2", ir.F64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
	dSrot := decl("srot", ir.Void, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64), ir.Param("c", ir.F64), ir.Param("s", ir.F64))
	dSrotg := decl("srotg", ir.Void, ir.Param("pa", ir.Ptr), ir.Param("pb", ir.Ptr), ir.Param("pc", ir.Ptr), ir.Param("ps", ir.Ptr))
	dSrotm := decl("srotm", ir.Void, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64), ir.Param("param", ir.Ptr))
	dSrotmg := decl("srotmg", ir.Void, ir.Param("pd1", ir.Ptr), ir.Param("pd2", ir.Ptr), ir.Param("px1", ir.Ptr), ir.Param("y1", ir.F64), ir.Param("param", ir.Ptr))
	dSscal := decl("sscal", ir.Void, ir.Param("n", ir.I64), ir.Param("sa", ir.F64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
	dSswap := decl("sswap", ir.Void, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))

	b := ir.NewBuilder(m)
	fb := New(b)
	b.NewFunc("main", ir.I64)

	wx := fb.Malloc(vlen)
	wy := fb.Malloc(vlen)

	freshen := func() {
		fb.ForN(I(0), I(vlen), 1, func(i ir.Value) {
			fb.NewLine()
			fb.StoreAt(fb.LoadAt(ir.F64, gX, i), wx, i)
			fb.StoreAt(fb.LoadAt(ir.F64, gY, i), wy, i)
		})
	}
	checksum := func(v ir.Value) ir.Value {
		s := fb.For(I(0), I(vlen), 1, []ir.Value{F(0)}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			return []ir.Value{fb.FAdd(c[0], fb.FMul(fb.LoadAt(ir.F64, v, i), fb.IToF(fb.Add(i, I(1)))))}
		})
		return s[0]
	}

	type combo struct{ n, incx, incy int64 }
	combos := []combo{{0, 1, 1}, {1, 1, 2}, {5, 1, 1}, {8, 2, 1}, {7, 1, -2}, {6, -2, -3}}

	for _, cb := range combos {
		n, ix, iy := I(cb.n), I(cb.incx), I(cb.incy)
		freshen()
		fb.Result(fb.Call(dSdot, n, wx, ix, wy, iy))
		fb.Result(fb.Call(dSasum, n, wx, ix))
		fb.Result(fb.Call(dSnrm2, n, wx, ix))
		fb.Result(fb.Call(dIsamax, n, wx, ix))

		freshen()
		fb.Call(dSaxpy, n, F(0.7), wx, ix, wy, iy)
		fb.Result(checksum(wy))

		freshen()
		fb.Call(dScopy, n, wx, ix, wy, iy)
		fb.Result(checksum(wy))

		freshen()
		fb.Call(dSscal, n, F(-1.3), wx, ix)
		fb.Result(checksum(wx))

		freshen()
		fb.Call(dSswap, n, wx, ix, wy, iy)
		fb.Result(fb.FAdd(checksum(wx), fb.FMul(F(2), checksum(wy))))

		freshen()
		fb.Call(dSrot, n, wx, ix, wy, iy, F(0.8), F(0.6))
		fb.Result(fb.FAdd(checksum(wx), fb.FMul(F(2), checksum(wy))))
	}

	// srotg on a few (a, b) pairs.
	{
		pa := fb.Malloc(1)
		pb := fb.Malloc(1)
		pc := fb.Malloc(1)
		ps := fb.Malloc(1)
		pairs := [][2]float64{{0.3, 0.4}, {-0.5, 1.2}, {0, 0}, {2.0, -0.1}}
		for _, pr := range pairs {
			fb.Store(F(pr[0]), pa)
			fb.Store(F(pr[1]), pb)
			fb.Call(dSrotg, pa, pb, pc, ps)
			fb.Result(fb.Load(ir.F64, pa))
			fb.Result(fb.Load(ir.F64, pb))
			fb.Result(fb.Load(ir.F64, pc))
			fb.Result(fb.Load(ir.F64, ps))
		}
	}

	// srotm with each flag.
	{
		prm := fb.Malloc(5)
		for _, flag := range []float64{-2, -1, 0, 1} {
			freshen()
			fb.Store(F(flag), prm)
			fb.StoreAt(F(0.9), prm, I(1))
			fb.StoreAt(F(-0.2), prm, I(2))
			fb.StoreAt(F(0.3), prm, I(3))
			fb.StoreAt(F(1.1), prm, I(4))
			fb.Call(dSrotm, I(7), wx, I(1), wy, I(2), prm)
			fb.Result(fb.FAdd(checksum(wx), fb.FMul(F(2), checksum(wy))))
		}
	}

	// srotmg on representative inputs covering its branches.
	{
		pd1 := fb.Malloc(1)
		pd2 := fb.Malloc(1)
		px1 := fb.Malloc(1)
		prm := fb.Malloc(5)
		cases := [][4]float64{
			{0.6, 0.8, 0.5, 0.4},  // |q1| > |q2| branch
			{0.2, 0.9, 0.3, 0.8},  // |q2| >= |q1|, q2 > 0
			{0.1, -0.4, 0.3, 0.9}, // q2 < 0: zero H
			{-0.3, 0.5, 0.2, 0.1}, // d1 < 0: error branch
			{0.5, 0.7, 0.4, 0.0},  // p2 == 0: flag -2
		}
		for _, cs := range cases {
			fb.Store(F(cs[0]), pd1)
			fb.Store(F(cs[1]), pd2)
			fb.Store(F(cs[2]), px1)
			for k := int64(0); k < 5; k++ {
				fb.StoreAt(F(0), prm, I(k))
			}
			fb.Call(dSrotmg, pd1, pd2, px1, F(cs[3]), prm)
			fb.Result(fb.Load(ir.F64, pd1))
			fb.Result(fb.Load(ir.F64, pd2))
			fb.Result(fb.Load(ir.F64, px1))
			s := fb.For(I(0), I(5), 1, []ir.Value{F(0)}, func(k ir.Value, c []ir.Value) []ir.Value {
				return []ir.Value{fb.FAdd(c[0], fb.LoadAt(ir.F64, prm, k))}
			})
			fb.Result(s[0])
		}
	}

	fb.Ret(I(0))
	if err := ir.VerifyModule(m); err != nil {
		panic("blas: sblat1: " + err.Error())
	}
	return m
}

// seededData is a tiny deterministic generator for driver vectors.
func seededData(seed int64) func() float64 {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
}
