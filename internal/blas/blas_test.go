package blas

import (
	"math"
	"testing"

	"care/internal/core"
	"care/internal/defense"
	"care/internal/faultinject"
	"care/internal/interp"
	"care/internal/machine"
)

// buildPair compiles libblas + sblat1 with (or without) CARE.
func buildPair(t testing.TB, opt int, protected bool) (lib, drv *core.Binary) {
	t.Helper()
	lib, err := core.BuildLib(Library(), opt, 0, []string{"care"})
	if err != nil {
		t.Fatalf("build libblas: %v", err)
	}
	if !protected {
		l2, err := core.Build(Library(), core.BuildOptions{OptLevel: opt, IsLib: true})
		if err != nil {
			t.Fatal(err)
		}
		lib = l2
	}
	drv, err = core.Build(Sblat1(5), core.BuildOptions{OptLevel: opt, Defenses: defense.If(protected, "care")}, lib)
	if err != nil {
		t.Fatalf("build sblat1: %v", err)
	}
	return lib, drv
}

func runPair(t testing.TB, lib, drv *core.Binary, protected bool) (*core.Process, machine.RunStatus) {
	t.Helper()
	p, err := core.NewProcess(core.ProcessConfig{App: drv, Libs: []*core.Binary{lib}, Protected: protected})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run(200_000_000)
	return p, st
}

func TestSblat1Differential(t *testing.T) {
	want, err := interp.Run(1<<30, Sblat1(5), Library())
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if len(want) < 40 {
		t.Fatalf("driver produced only %d results", len(want))
	}
	for _, v := range want {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite driver result: %v", want)
		}
	}
	for _, opt := range []int{0, 1} {
		lib, drv := buildPair(t, opt, false)
		p, st := runPair(t, lib, drv, false)
		if st != machine.StatusExited {
			t.Fatalf("O%d: %v (%v)", opt, st, p.CPU.PendingTrap)
		}
		got := p.Results()
		if len(got) != len(want) {
			t.Fatalf("O%d: %d results, want %d", opt, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("O%d: result[%d] = %v, want %v", opt, i, got[i], want[i])
			}
		}
	}
	t.Logf("sblat1 produces %d checked values", len(want))
}

// TestReferenceValues spot-checks routine semantics against independent
// Go implementations.
func TestReferenceValues(t *testing.T) {
	lib, drv := buildPair(t, 0, false)
	p, st := runPair(t, lib, drv, false)
	if st != machine.StatusExited {
		t.Fatal(st)
	}
	got := p.Results()
	// Recompute the first combo's sdot/sasum/snrm2/isamax in Go.
	rng := seededData(5)
	const vlen = 40
	xs := make([]float64, vlen)
	ys := make([]float64, vlen)
	for i := 0; i < vlen; i++ {
		xs[i] = 2*rng() - 1
		ys[i] = 2*rng() - 1
	}
	// combo{0,1,1}: n=0 -> sdot=0 sasum=0 snrm2=0 isamax=0.
	if got[0] != 0 || got[1] != 0 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("n=0 combo results nonzero: %v", got[:4])
	}
	// combo{1,1,2}: n=1.
	if got[9] != xs[0]*ys[0] {
		t.Errorf("sdot(n=1) = %v, want %v", got[9], xs[0]*ys[0])
	}
	if got[10] != math.Abs(xs[0]) {
		t.Errorf("sasum(n=1) = %v, want %v", got[10], math.Abs(xs[0]))
	}
	if math.Abs(got[11]-math.Abs(xs[0])) > 1e-15 {
		t.Errorf("snrm2(n=1) = %v, want %v", got[11], math.Abs(xs[0]))
	}
	if got[12] != 1 {
		t.Errorf("isamax(n=1) = %v, want 1", got[12])
	}
	// combo{5,1,1}: full checks.
	var dot, asum, nrm2 float64
	best, bestAbs := 0, -1.0
	for i := 0; i < 5; i++ {
		dot += xs[i] * ys[i]
		asum += math.Abs(xs[i])
		nrm2 += xs[i] * xs[i]
		if math.Abs(xs[i]) > bestAbs {
			bestAbs = math.Abs(xs[i])
			best = i + 1
		}
	}
	if got[18] != dot {
		t.Errorf("sdot(n=5) = %v, want %v", got[18], dot)
	}
	if got[19] != asum {
		t.Errorf("sasum(n=5) = %v, want %v", got[19], asum)
	}
	if math.Abs(got[20]-math.Sqrt(nrm2)) > 1e-15 {
		t.Errorf("snrm2(n=5) = %v, want %v", got[20], math.Sqrt(nrm2))
	}
	if got[21] != float64(best) {
		t.Errorf("isamax(n=5) = %v, want %d", got[21], best)
	}
}

// TestBLASCoverage reproduces Table 9: faults injected into both the
// library and the driver, recovered by per-image recovery tables.
func TestBLASCoverage(t *testing.T) {
	lib, drv := buildPair(t, 0, true)
	if lib.DefenseStats["care"].NumKernels == 0 || drv.DefenseStats["care"].NumKernels == 0 {
		t.Fatalf("missing kernels: lib=%d drv=%d", lib.DefenseStats["care"].NumKernels, drv.DefenseStats["care"].NumKernels)
	}
	exp := &faultinject.CoverageExperiment{
		App: drv, Libs: []*core.Binary{lib},
		TargetImages: []string{"sblat1", "libblas"},
		Trials:       30, Seed: 99,
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatalf("%v (res %+v)", err, res)
	}
	t.Logf("BLAS: attempts=%d segv=%d recovered=%d coverage=%.1f%% mean=%v",
		res.Attempts, res.SigsegvTrials, res.Recovered, 100*res.Coverage(), res.MeanRecoveryTime())
	if res.Coverage() < 0.4 {
		t.Errorf("BLAS coverage %.2f far below the paper's 83%%", res.Coverage())
	}
}
