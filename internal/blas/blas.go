// Package blas implements the twelve REAL level-1 BLAS routines the
// paper's sblat1 driver exercises (§5.5), written in the mini-IR and
// compiled as a shared-library image ("libblas.so"). The strided index
// arithmetic (ix = start + i*incx, including the Fortran negative-stride
// start offset (1-n)*incx) is exactly the kind of address computation
// CARE protects inside libraries.
package blas

import (
	"care/internal/ir"
	. "care/internal/irbuild"
)

// RoutineNames lists the provided level-1 routines.
var RoutineNames = []string{
	"isamax", "sasum", "saxpy", "scopy", "sdot", "snrm2",
	"srot", "srotg", "srotm", "srotmg", "sscal", "sswap",
}

// Library builds the libblas module.
func Library() *ir.Module {
	m := ir.NewModule("libblas")
	b := ir.NewBuilder(m)
	fb := New(b)

	// strideStart(n, inc) = 0 for inc >= 0, (1-n)*inc otherwise — the
	// Fortran BLAS convention (1-based IX = (-N+1)*INCX + 1).
	strideStart := func(n, inc ir.Value) ir.Value {
		return fb.Select(fb.ICmp(ir.OpICmpSGE, inc, I(0)), I(0), fb.Mul(fb.Sub(I(1), n), inc))
	}

	// isamax(n, sx, incx) -> 1-based index of the first element with
	// maximum absolute value (0 when n < 1).
	{
		f := b.NewFunc("isamax", ir.I64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
		n, sx, incx := f.Params[0], f.Params[1], f.Params[2]
		st := strideStart(n, incx)
		out := fb.For(I(0), n, 1, []ir.Value{I(1), F(-1), st}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			best, bestAbs, ix := c[0], c[1], c[2]
			v := fb.HostCall("fabs", ir.F64, fb.LoadAt(ir.F64, sx, ix))
			take := fb.FCmp(ir.OpFCmpOGT, v, bestAbs)
			nb := fb.If(take, func() []ir.Value {
				return []ir.Value{fb.Add(i, I(1)), v}
			}, func() []ir.Value {
				return []ir.Value{best, bestAbs}
			})
			return []ir.Value{nb[0], nb[1], fb.Add(ix, incx)}
		})
		// Fortran convention: 0 for n < 1.
		fb.Ret(fb.Select(fb.ICmp(ir.OpICmpSGE, n, I(1)), out[0], I(0)))
	}

	// sasum(n, sx, incx) -> sum |x_i|.
	{
		f := b.NewFunc("sasum", ir.F64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
		n, sx, incx := f.Params[0], f.Params[1], f.Params[2]
		st := strideStart(n, incx)
		out := fb.For(I(0), n, 1, []ir.Value{F(0), st}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			v := fb.HostCall("fabs", ir.F64, fb.LoadAt(ir.F64, sx, c[1]))
			return []ir.Value{fb.FAdd(c[0], v), fb.Add(c[1], incx)}
		})
		fb.Ret(out[0])
	}

	// saxpy(n, sa, sx, incx, sy, incy): y = a*x + y.
	{
		f := b.NewFunc("saxpy", ir.Void, ir.Param("n", ir.I64), ir.Param("sa", ir.F64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
		n, sa, sx, incx, sy, incy := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4], f.Params[5]
		sx0, sy0 := strideStart(n, incx), strideStart(n, incy)
		fb.For(I(0), n, 1, []ir.Value{sx0, sy0}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			xv := fb.LoadAt(ir.F64, sx, c[0])
			yv := fb.LoadAt(ir.F64, sy, c[1])
			fb.StoreAt(fb.FAdd(yv, fb.FMul(sa, xv)), sy, c[1])
			return []ir.Value{fb.Add(c[0], incx), fb.Add(c[1], incy)}
		})
		fb.Ret(nil)
	}

	// scopy(n, sx, incx, sy, incy): y = x.
	{
		f := b.NewFunc("scopy", ir.Void, ir.Param("n", ir.I64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
		n, sx, incx, sy, incy := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
		sx0, sy0 := strideStart(n, incx), strideStart(n, incy)
		fb.For(I(0), n, 1, []ir.Value{sx0, sy0}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			fb.StoreAt(fb.LoadAt(ir.F64, sx, c[0]), sy, c[1])
			return []ir.Value{fb.Add(c[0], incx), fb.Add(c[1], incy)}
		})
		fb.Ret(nil)
	}

	// sdot(n, sx, incx, sy, incy) -> x . y.
	{
		f := b.NewFunc("sdot", ir.F64, ir.Param("n", ir.I64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
		n, sx, incx, sy, incy := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
		sx0, sy0 := strideStart(n, incx), strideStart(n, incy)
		out := fb.For(I(0), n, 1, []ir.Value{F(0), sx0, sy0}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			xv := fb.LoadAt(ir.F64, sx, c[1])
			yv := fb.LoadAt(ir.F64, sy, c[2])
			return []ir.Value{fb.FAdd(c[0], fb.FMul(xv, yv)), fb.Add(c[1], incx), fb.Add(c[2], incy)}
		})
		fb.Ret(out[0])
	}

	// snrm2(n, sx, incx) -> ||x||_2 (simple sum-of-squares form).
	{
		f := b.NewFunc("snrm2", ir.F64, ir.Param("n", ir.I64), ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
		n, sx, incx := f.Params[0], f.Params[1], f.Params[2]
		st := strideStart(n, incx)
		out := fb.For(I(0), n, 1, []ir.Value{F(0), st}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			v := fb.LoadAt(ir.F64, sx, c[1])
			return []ir.Value{fb.FAdd(c[0], fb.FMul(v, v)), fb.Add(c[1], incx)}
		})
		fb.Ret(fb.Sqrt(out[0]))
	}

	// srot(n, sx, incx, sy, incy, c, s): apply a plane rotation.
	{
		f := b.NewFunc("srot", ir.Void, ir.Param("n", ir.I64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64),
			ir.Param("c", ir.F64), ir.Param("s", ir.F64))
		n, sx, incx, sy, incy, cc, ss := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4], f.Params[5], f.Params[6]
		sx0, sy0 := strideStart(n, incx), strideStart(n, incy)
		fb.For(I(0), n, 1, []ir.Value{sx0, sy0}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			xv := fb.LoadAt(ir.F64, sx, c[0])
			yv := fb.LoadAt(ir.F64, sy, c[1])
			fb.StoreAt(fb.FAdd(fb.FMul(cc, xv), fb.FMul(ss, yv)), sx, c[0])
			fb.StoreAt(fb.FSub(fb.FMul(cc, yv), fb.FMul(ss, xv)), sy, c[1])
			return []ir.Value{fb.Add(c[0], incx), fb.Add(c[1], incy)}
		})
		fb.Ret(nil)
	}

	// srotg(a*, b*, c*, s*): construct a Givens rotation (reference
	// BLAS algorithm, scalars passed by reference as in Fortran).
	{
		f := b.NewFunc("srotg", ir.Void, ir.Param("pa", ir.Ptr), ir.Param("pb", ir.Ptr),
			ir.Param("pc", ir.Ptr), ir.Param("ps", ir.Ptr))
		pa, pb, pc, ps := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
		a := fb.Load(ir.F64, pa)
		bb := fb.Load(ir.F64, pb)
		absA := fb.HostCall("fabs", ir.F64, a)
		absB := fb.HostCall("fabs", ir.F64, bb)
		roe := fb.If(fb.FCmp(ir.OpFCmpOGT, absA, absB),
			func() []ir.Value { return []ir.Value{a} },
			func() []ir.Value { return []ir.Value{bb} })[0]
		scale := fb.FAdd(absA, absB)
		fb.If(fb.FCmp(ir.OpFCmpOEQ, scale, F(0)), func() []ir.Value {
			fb.Store(F(1), pc)
			fb.Store(F(0), ps)
			fb.Store(F(0), pa)
			fb.Store(F(0), pb)
			return nil
		}, func() []ir.Value {
			fb.NewLine()
			an := fb.FDiv(a, scale)
			bn := fb.FDiv(bb, scale)
			r0 := fb.FMul(scale, fb.Sqrt(fb.FAdd(fb.FMul(an, an), fb.FMul(bn, bn))))
			r := fb.If(fb.FCmp(ir.OpFCmpOLT, roe, F(0)),
				func() []ir.Value { return []ir.Value{fb.FSub(F(0), r0)} },
				func() []ir.Value { return []ir.Value{r0} })[0]
			cv := fb.FDiv(a, r)
			sv := fb.FDiv(bb, r)
			z := fb.If(fb.FCmp(ir.OpFCmpOGT, absA, absB),
				func() []ir.Value { return []ir.Value{sv} },
				func() []ir.Value {
					return []ir.Value{fb.If(fb.FCmp(ir.OpFCmpONE, cv, F(0)),
						func() []ir.Value { return []ir.Value{fb.FDiv(F(1), cv)} },
						func() []ir.Value { return []ir.Value{F(1)} })[0]}
				})[0]
			fb.Store(cv, pc)
			fb.Store(sv, ps)
			fb.Store(r, pa)
			fb.Store(z, pb)
			return nil
		})
		fb.Ret(nil)
	}

	// srotm(n, sx, incx, sy, incy, param): apply a modified rotation.
	{
		f := b.NewFunc("srotm", ir.Void, ir.Param("n", ir.I64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64),
			ir.Param("param", ir.Ptr))
		n, sx, incx, sy, incy, prm := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4], f.Params[5]
		flag := fb.LoadAt(ir.F64, prm, I(0))
		fb.IfThen(fb.FCmp(ir.OpFCmpONE, flag, F(-2)), func() {
			h11 := fb.LoadAt(ir.F64, prm, I(1))
			h21 := fb.LoadAt(ir.F64, prm, I(2))
			h12 := fb.LoadAt(ir.F64, prm, I(3))
			h22 := fb.LoadAt(ir.F64, prm, I(4))
			// Normalise the H matrix per flag.
			hs := fb.If(fb.FCmp(ir.OpFCmpOEQ, flag, F(-1)), func() []ir.Value {
				return []ir.Value{h11, h12, h21, h22}
			}, func() []ir.Value {
				return fb.If(fb.FCmp(ir.OpFCmpOEQ, flag, F(0)), func() []ir.Value {
					return []ir.Value{F(1), h12, h21, F(1)}
				}, func() []ir.Value {
					return []ir.Value{h11, F(1), F(-1), h22}
				})
			})
			m11, m12, m21, m22 := hs[0], hs[1], hs[2], hs[3]
			sx0, sy0 := strideStart(n, incx), strideStart(n, incy)
			fb.For(I(0), n, 1, []ir.Value{sx0, sy0}, func(i ir.Value, c []ir.Value) []ir.Value {
				fb.NewLine()
				xv := fb.LoadAt(ir.F64, sx, c[0])
				yv := fb.LoadAt(ir.F64, sy, c[1])
				fb.StoreAt(fb.FAdd(fb.FMul(m11, xv), fb.FMul(m12, yv)), sx, c[0])
				fb.StoreAt(fb.FAdd(fb.FMul(m21, xv), fb.FMul(m22, yv)), sy, c[1])
				return []ir.Value{fb.Add(c[0], incx), fb.Add(c[1], incy)}
			})
		})
		fb.Ret(nil)
	}

	// srotmg(d1*, d2*, x1*, y1, param*): construct a modified rotation.
	// Reference algorithm with the GAM rescaling loops omitted (inputs
	// in the driver stay in range), matching the case analysis of the
	// netlib source.
	{
		f := b.NewFunc("srotmg", ir.Void, ir.Param("pd1", ir.Ptr), ir.Param("pd2", ir.Ptr),
			ir.Param("px1", ir.Ptr), ir.Param("y1", ir.F64), ir.Param("param", ir.Ptr))
		pd1, pd2, px1, y1, prm := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
		d1 := fb.Load(ir.F64, pd1)
		d2 := fb.Load(ir.F64, pd2)
		x1 := fb.Load(ir.F64, px1)
		fb.If(fb.FCmp(ir.OpFCmpOLT, d1, F(0)), func() []ir.Value {
			// Error case: H = 0, everything zeroed.
			fb.StoreAt(F(-1), prm, I(0))
			for k := int64(1); k <= 4; k++ {
				fb.StoreAt(F(0), prm, I(k))
			}
			fb.Store(F(0), pd1)
			fb.Store(F(0), pd2)
			fb.Store(F(0), px1)
			return nil
		}, func() []ir.Value {
			p2 := fb.FMul(d2, y1)
			fb.If(fb.FCmp(ir.OpFCmpOEQ, p2, F(0)), func() []ir.Value {
				fb.StoreAt(F(-2), prm, I(0))
				return nil
			}, func() []ir.Value {
				fb.NewLine()
				p1 := fb.FMul(d1, x1)
				q2 := fb.FMul(p2, y1)
				q1 := fb.FMul(p1, x1)
				aq1 := fb.HostCall("fabs", ir.F64, q1)
				aq2 := fb.HostCall("fabs", ir.F64, q2)
				fb.If(fb.FCmp(ir.OpFCmpOGT, aq1, aq2), func() []ir.Value {
					fb.NewLine()
					h21 := fb.FDiv(fb.FSub(F(0), y1), x1)
					h12 := fb.FDiv(p2, p1)
					u := fb.FSub(F(1), fb.FMul(h12, h21))
					fb.IfThen(fb.FCmp(ir.OpFCmpOGT, u, F(0)), func() {
						fb.StoreAt(F(0), prm, I(0))
						fb.StoreAt(F(0), prm, I(1)) // h11 unused for flag 0
						fb.StoreAt(h21, prm, I(2))
						fb.StoreAt(h12, prm, I(3))
						fb.StoreAt(F(0), prm, I(4)) // h22 unused for flag 0
						fb.Store(fb.FDiv(d1, u), pd1)
						fb.Store(fb.FDiv(d2, u), pd2)
						fb.Store(fb.FMul(x1, u), px1)
					})
					return nil
				}, func() []ir.Value {
					fb.If(fb.FCmp(ir.OpFCmpOLT, q2, F(0)), func() []ir.Value {
						fb.StoreAt(F(-1), prm, I(0))
						for k := int64(1); k <= 4; k++ {
							fb.StoreAt(F(0), prm, I(k))
						}
						fb.Store(F(0), pd1)
						fb.Store(F(0), pd2)
						fb.Store(F(0), px1)
						return nil
					}, func() []ir.Value {
						fb.NewLine()
						h11 := fb.FDiv(p1, p2)
						h22 := fb.FDiv(x1, y1)
						u := fb.FAdd(F(1), fb.FMul(h11, h22))
						newD1 := fb.FDiv(d2, u)
						newD2 := fb.FDiv(d1, u)
						fb.StoreAt(F(1), prm, I(0))
						fb.StoreAt(h11, prm, I(1))
						fb.StoreAt(F(0), prm, I(2))
						fb.StoreAt(F(0), prm, I(3))
						fb.StoreAt(h22, prm, I(4))
						fb.Store(newD1, pd1)
						fb.Store(newD2, pd2)
						fb.Store(fb.FMul(y1, u), px1)
						return nil
					})
					return nil
				})
				return nil
			})
			return nil
		})
		fb.Ret(nil)
	}

	// sscal(n, sa, sx, incx): x = a*x.
	{
		f := b.NewFunc("sscal", ir.Void, ir.Param("n", ir.I64), ir.Param("sa", ir.F64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64))
		n, sa, sx, incx := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
		st := strideStart(n, incx)
		fb.For(I(0), n, 1, []ir.Value{st}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			fb.StoreAt(fb.FMul(sa, fb.LoadAt(ir.F64, sx, c[0])), sx, c[0])
			return []ir.Value{fb.Add(c[0], incx)}
		})
		fb.Ret(nil)
	}

	// sswap(n, sx, incx, sy, incy).
	{
		f := b.NewFunc("sswap", ir.Void, ir.Param("n", ir.I64),
			ir.Param("sx", ir.Ptr), ir.Param("incx", ir.I64), ir.Param("sy", ir.Ptr), ir.Param("incy", ir.I64))
		n, sx, incx, sy, incy := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
		sx0, sy0 := strideStart(n, incx), strideStart(n, incy)
		fb.For(I(0), n, 1, []ir.Value{sx0, sy0}, func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			xv := fb.LoadAt(ir.F64, sx, c[0])
			yv := fb.LoadAt(ir.F64, sy, c[1])
			fb.StoreAt(yv, sx, c[0])
			fb.StoreAt(xv, sy, c[1])
			return []ir.Value{fb.Add(c[0], incx), fb.Add(c[1], incy)}
		})
		fb.Ret(nil)
	}

	if err := ir.VerifyModule(m); err != nil {
		panic("blas: " + err.Error())
	}
	return m
}
