package taint

import (
	"testing"

	"care/internal/core"
	"care/internal/debuginfo"
	"care/internal/hostenv"
	"care/internal/machine"
	"care/internal/workloads"
)

func asm(t *testing.T, code []machine.MInstr) (*machine.CPU, *machine.Image) {
	t.Helper()
	p := &machine.Program{
		Name:     "taintasm",
		CodeBase: machine.AppCodeBase,
		Code:     code,
		Funcs:    []machine.FuncSym{{Name: "_start", Entry: 0}},
		Debug:    debuginfo.New(),
	}
	mem := machine.NewMemory()
	img, err := machine.Load(mem, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := machine.NewCPU(mem, hostenv.NewEnv())
	cpu.Attach(img)
	if err := cpu.InitStack(); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Start(img, "_start"); err != nil {
		t.Fatal(err)
	}
	return cpu, img
}

func TestPropagationThroughALU(t *testing.T) {
	cpu, _ := asm(t, []machine.MInstr{
		{Op: machine.MAdd, Rd: machine.R2, Ra: machine.R1, UseImm: true, Imm: 1}, // tainted after seed
		{Op: machine.MMul, Rd: machine.R3, Ra: machine.R2, Rb: machine.R2},       // propagates
		{Op: machine.MMovImm, Rd: machine.R2, Imm: 0},                            // scrubs r2
		{Op: machine.MHalt},
	})
	cpu.R[machine.R1] = 5
	tr := Attach(cpu)
	tr.MarkReg(machine.R1)
	cpu.Run(10)
	if len(tr.Trace) < 2 {
		t.Fatalf("trace too short: %+v", tr.Trace)
	}
	// r3 stays tainted, r2 was scrubbed, r1 still tainted.
	if !tr.AnyTaint() {
		t.Fatal("taint vanished entirely")
	}
	if tr.TaintedWrites < 2 {
		t.Fatalf("tainted writes = %d", tr.TaintedWrites)
	}
}

func TestOverwriteScrubs(t *testing.T) {
	cpu, _ := asm(t, []machine.MInstr{
		{Op: machine.MMovImm, Rd: machine.R1, Imm: 5}, // scrubs the seed
		{Op: machine.MHalt},
	})
	tr := Attach(cpu)
	tr.MarkReg(machine.R1)
	cpu.Run(10)
	if tr.AnyTaint() {
		t.Fatal("immediate overwrite did not scrub taint")
	}
}

func TestPropagationThroughMemory(t *testing.T) {
	cpu, _ := asm(t, []machine.MInstr{
		{Op: machine.MMovImm, Rd: machine.R1, Imm: 0x30000},
		{Op: machine.MStore, Base: machine.R1, Index: machine.NoReg, Ra: machine.R2}, // tainted store
		{Op: machine.MMovImm, Rd: machine.R2, Imm: 0},                                // scrub reg
		{Op: machine.MLoad, Rd: machine.R3, Base: machine.R1, Index: machine.NoReg},  // reload -> tainted again
		{Op: machine.MHalt},
	})
	if _, err := cpu.Mem.Map(0x30000, 0x1000, "data"); err != nil {
		t.Fatal(err)
	}
	tr := Attach(cpu)
	tr.MarkReg(machine.R2)
	cpu.Run(10)
	if tr.TaintedMemWords() != 1 {
		t.Fatalf("tainted mem words = %d", tr.TaintedMemWords())
	}
	// r3 must be tainted via the memory round trip.
	found := false
	for _, ev := range tr.Trace {
		if ev.Op == machine.MLoad {
			found = true
		}
	}
	if !found {
		t.Fatalf("load did not pick up memory taint: %+v", tr.Trace)
	}
}

func TestTaintedAddressTaintsLoadedValue(t *testing.T) {
	cpu, _ := asm(t, []machine.MInstr{
		{Op: machine.MLoad, Rd: machine.R3, Base: machine.R1, Index: machine.R2, Scale: 8},
		{Op: machine.MHalt},
	})
	if _, err := cpu.Mem.Map(0x30000, 0x1000, "data"); err != nil {
		t.Fatal(err)
	}
	cpu.R[machine.R1] = 0x30000
	cpu.R[machine.R2] = 1
	tr := Attach(cpu)
	tr.MarkReg(machine.R2) // corrupt the index
	cpu.Run(10)
	// Loaded value came "from the wrong place": must be tainted.
	tainted := false
	for _, ev := range tr.Trace {
		if ev.Op == machine.MLoad {
			tainted = true
		}
	}
	if !tainted {
		t.Fatal("load through tainted index not recorded")
	}
}

// TestEndToEndPropagationTrace runs a real workload, seeds taint at a
// mid-run instruction destination (as the injector does), and verifies
// the tracker observes the propagation the §2 study measures.
func TestEndToEndPropagationTrace(t *testing.T) {
	w, err := workloads.Get("HPCCG")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		t.Fatal(err)
	}
	tr := Attach(p.CPU)
	seeded := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if !seeded && c.Dyn >= 20_000 {
			if _, ok := in.HasDest(); ok {
				seeded = true
				tr.MarkDest(c, in)
			}
		}
	}
	st := p.Run(0)
	if !seeded {
		t.Skip("seed point had no destination")
	}
	if st != machine.StatusExited {
		t.Logf("run ended with %v (taint made it crash — also a valid outcome)", st)
	}
	t.Logf("propagation: %d tainted writes, %d trace events, %d tainted mem words at end",
		tr.TaintedWrites, len(tr.Trace), tr.TaintedMemWords())
	if tr.TaintedWrites == 0 {
		t.Error("no propagation observed from a destination-operand seed")
	}
}
