// Package taint implements the fault-propagation tracker behind the
// paper's §2 methodology: "The fault is injected ... then execution is
// continued, tracking fault propagation by recording its execution
// path. The trace of instructions that propagate the fault is then
// analyzed."
//
// A Tracker shadows every integer register, float register and memory
// word with a taint bit. Marking the injected destination taints the
// seed; thereafter, each executed instruction propagates taint from its
// sources to its destination (and clears the destination when all
// sources are clean — overwrites scrub). The tracker records the
// propagation trace: which static instructions touched tainted data, in
// order, with dynamic timestamps.
package taint

import "care/internal/machine"

// Event is one tainted-instruction occurrence.
type Event struct {
	// Dyn is the dynamic instruction count at which it retired.
	Dyn uint64
	// Image and Idx identify the static instruction.
	Image string
	Idx   int
	// Op is the instruction's opcode.
	Op machine.MOp
}

// Tracker shadows a CPU's architectural state with taint bits.
type Tracker struct {
	regs  [machine.NumReg]bool
	fregs [machine.NumFReg]bool
	mem   map[machine.Word]bool

	// Trace records instructions that read or wrote tainted state (cap
	// applied to bound memory).
	Trace []Event
	// MaxTrace bounds the trace (0 = 4096).
	MaxTrace int
	// TaintedWrites counts tainted destination writes.
	TaintedWrites int

	cpu *machine.CPU
}

// Attach installs the tracker on the CPU via the BeforeStep hook (it
// must see operand registers before the instruction overwrites them).
// Any existing BeforeStep hook is chained after the tracker.
func Attach(c *machine.CPU) *Tracker {
	t := &Tracker{mem: map[machine.Word]bool{}, cpu: c}
	prev := c.BeforeStep
	c.BeforeStep = func(cc *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		t.step(cc, img, idx, in)
		if prev != nil {
			prev(cc, img, idx, in)
		}
	}
	return t
}

// MarkReg seeds taint on an integer register.
func (t *Tracker) MarkReg(r machine.Reg) { t.regs[r] = true }

// MarkFReg seeds taint on a float register.
func (t *Tracker) MarkFReg(f machine.FReg) { t.fregs[f] = true }

// MarkMem seeds taint on a memory word.
func (t *Tracker) MarkMem(addr machine.Word) { t.mem[addr&^7] = true }

// MarkDest seeds taint on the destination of the just-executed
// instruction (matching the injector's corruption point).
func (t *Tracker) MarkDest(c *machine.CPU, in *machine.MInstr) {
	kind, ok := in.HasDest()
	if !ok {
		return
	}
	switch kind {
	case machine.DestIntReg:
		rd := in.Rd
		if in.Op == machine.MHost {
			rd = machine.R0
		}
		t.MarkReg(rd)
	case machine.DestFloatReg:
		t.MarkFReg(in.Fd)
	case machine.DestMemory:
		switch in.Op {
		case machine.MStore, machine.MFStore:
			t.MarkMem(in.EffectiveAddr(&c.R))
		case machine.MPush, machine.MFPush:
			t.MarkMem(c.R[machine.SP])
		}
	}
}

// AnyTaint reports whether any architectural state is currently tainted.
func (t *Tracker) AnyTaint() bool {
	for _, v := range t.regs {
		if v {
			return true
		}
	}
	for _, v := range t.fregs {
		if v {
			return true
		}
	}
	return len(t.mem) > 0
}

// TaintedMemWords reports how many memory words are tainted.
func (t *Tracker) TaintedMemWords() int { return len(t.mem) }

func (t *Tracker) record(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
	max := t.MaxTrace
	if max == 0 {
		max = 4096
	}
	if len(t.Trace) < max {
		t.Trace = append(t.Trace, Event{Dyn: c.Dyn, Image: img.Prog.Name, Idx: idx, Op: in.Op})
	}
}

// step applies the propagation rule for one instruction: the
// destination's taint becomes the OR of the source taints; clean
// overwrites scrub stale taint.
func (t *Tracker) step(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
	src2 := func() bool {
		if in.UseImm {
			return false
		}
		return t.regs[in.Rb]
	}
	memTaint := func() bool {
		return t.mem[in.EffectiveAddr(&c.R)&^7] ||
			// A tainted base/index register makes the *loaded value*
			// suspect too (it came from the wrong place).
			t.regs[in.Base] || (in.Index != machine.NoReg && t.regs[in.Index])
	}
	setReg := func(r machine.Reg, v bool) {
		t.regs[r] = v
		if v {
			t.TaintedWrites++
			t.record(c, img, idx, in)
		}
	}
	setFReg := func(r machine.FReg, v bool) {
		t.fregs[r] = v
		if v {
			t.TaintedWrites++
			t.record(c, img, idx, in)
		}
	}
	setMem := func(a machine.Word, v bool) {
		if v {
			t.mem[a&^7] = true
			t.TaintedWrites++
			t.record(c, img, idx, in)
		} else {
			delete(t.mem, a&^7)
		}
	}

	switch in.Op {
	case machine.MMovImm:
		setReg(in.Rd, false)
	case machine.MMov:
		setReg(in.Rd, t.regs[in.Ra])
	case machine.MAdd, machine.MSub, machine.MMul, machine.MDiv, machine.MRem,
		machine.MAnd, machine.MOr, machine.MXor, machine.MShl, machine.MShr:
		setReg(in.Rd, t.regs[in.Ra] || src2())
	case machine.MFMovImm:
		setFReg(in.Fd, false)
	case machine.MFMov:
		setFReg(in.Fd, t.fregs[in.Fa])
	case machine.MFAdd, machine.MFSub, machine.MFMul, machine.MFDiv:
		setFReg(in.Fd, t.fregs[in.Fa] || t.fregs[in.Fb])
	case machine.MCvtIF, machine.MBitIF:
		setFReg(in.Fd, t.regs[in.Ra])
	case machine.MCvtFI, machine.MBitFI:
		setReg(in.Rd, t.fregs[in.Fa])
	case machine.MSet:
		setReg(in.Rd, t.regs[in.Ra] || src2())
	case machine.MFSet:
		setReg(in.Rd, t.fregs[in.Fa] || t.fregs[in.Fb])
	case machine.MLea:
		setReg(in.Rd, t.regs[in.Base] || (in.Index != machine.NoReg && t.regs[in.Index]))
	case machine.MLoad:
		setReg(in.Rd, memTaint())
	case machine.MFLoad:
		setFReg(in.Fd, memTaint())
	case machine.MStore:
		setMem(in.EffectiveAddr(&c.R), t.regs[in.Ra])
	case machine.MFStore:
		setMem(in.EffectiveAddr(&c.R), t.fregs[in.Fa])
	case machine.MPush:
		setMem(c.R[machine.SP]-8, t.regs[in.Ra])
	case machine.MFPush:
		setMem(c.R[machine.SP]-8, t.fregs[in.Fa])
	case machine.MPop:
		setReg(in.Rd, t.mem[c.R[machine.SP]&^7])
		delete(t.mem, c.R[machine.SP]&^7)
	case machine.MFPop:
		setFReg(in.Fd, t.mem[c.R[machine.SP]&^7])
		delete(t.mem, c.R[machine.SP]&^7)
	case machine.MJnz, machine.MJz:
		// Control-flow taint (a tainted branch condition) is recorded
		// but not propagated into state (explicit-flow tracking, as in
		// the paper's trace analysis).
		if t.regs[in.Ra] {
			t.record(c, img, idx, in)
		}
	case machine.MHost:
		// Host results are derived from stack arguments.
		n := in.HostArgs
		tainted := false
		for i := 0; i < n; i++ {
			if t.mem[(c.R[machine.SP]+machine.Word(8*(n-1-i)))&^7] {
				tainted = true
			}
		}
		setReg(machine.R0, tainted)
	}
}

// FirstTaintDyn returns the dynamic timestamp of the first propagation
// event (0 when none).
func (t *Tracker) FirstTaintDyn() uint64 {
	if len(t.Trace) == 0 {
		return 0
	}
	return t.Trace[0].Dyn
}
