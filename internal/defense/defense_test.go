package defense

import (
	"strings"
	"testing"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	if _, err := Lookup("none"); err != nil {
		t.Fatalf("none not registered: %v", err)
	}
	_, err := Lookup("no-such-defense")
	if err == nil {
		t.Fatal("unknown defense accepted")
	}
	if !strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "none") {
		t.Fatalf("error does not list registered passes: %v", err)
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(nonePass{})
}

func TestResolveRejectsDuplicates(t *testing.T) {
	if _, err := Resolve([]string{"none", "none"}); err == nil {
		t.Fatal("duplicate list accepted")
	}
	if _, err := Resolve([]string{"none", "bogus"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	passes, err := Resolve([]string{"none"})
	if err != nil || len(passes) != 1 || passes[0].Name() != "none" {
		t.Fatalf("Resolve([none]) = %v, %v", passes, err)
	}
}

func TestParseList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"care", []string{"care"}},
		{"care,presage", []string{"care", "presage"}},
		{" care , sfi ", []string{"care", "sfi"}},
		{",,", nil},
	}
	for _, c := range cases {
		got := ParseList(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("ParseList(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestIf(t *testing.T) {
	if If(false, "care") != nil {
		t.Fatal("If(false) != nil")
	}
	l := If(true, "care", "presage")
	if len(l) != 2 || l[0] != "care" {
		t.Fatalf("If(true) = %v", l)
	}
}

func TestPassForProvenance(t *testing.T) {
	if PassForProvenance(ColPresage) != "presage" || PassForProvenance(ColSFI) != "sfi" {
		t.Fatal("provenance columns misattributed")
	}
	if PassForProvenance(0) != "" || PassForProvenance(7) != "" {
		t.Fatal("real source columns must not map to a pass")
	}
}
