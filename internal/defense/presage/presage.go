// Package presage implements PRESAGE-style protected address
// generation (Sharma et al.) as a detection-only defense pass. For
// every load/store whose address comes from a structured computation
// chain (GEPs and integer arithmetic), the pass clones the chain
// immediately before the access — recomputing the address from the
// same leaves — and compares the original against the shadow. A
// mismatch means a soft error corrupted an intermediate register of
// the chain; the check calls care_detect, which raises a deterministic
// SIGTRAP into the Safeguard escalation chain.
//
// Faithful to the original scheme, PRESAGE detects corruption of the
// address *computation* but not of the chain's leaves (loop indices in
// registers shared with the shadow, base pointers loaded from memory):
// a corrupted leaf corrupts original and shadow identically. Direct
// global/alloca accesses have no chain to recompute and are skipped —
// the same accesses CARE's armor declines to kernelise.
package presage

import (
	"care/internal/defense"
	"care/internal/ir"
)

// maxChain bounds one shadow recomputation so a pathological
// expression chain cannot double the module; longer chains are counted
// as skipped.
const maxChain = 64

type pass struct{}

func (pass) Name() string { return "presage" }

// Detects marks presage as a detection-only defense: its checks raise
// SIGTRAP traps, so core flags the binary for Safeguard attachment
// even though it ships no recovery table.
func (pass) Detects() bool { return true }

func (pass) Apply(m *ir.Module, opt defense.Options) (*defense.Result, error) {
	st := defense.Stats{Pass: "presage", ProvenanceCol: defense.ColPresage}
	for _, f := range m.Funcs {
		cb := &defense.CheckBuilder{Prefix: "psg", Col: defense.ColPresage}
		changed := false
		for _, b := range f.Blocks {
			before := map[*ir.Instr][]*ir.Instr{}
			for _, in := range b.Instrs {
				if !in.IsMemAccess() {
					continue
				}
				st.NumMemAccesses++
				ptr, _ := in.PointerOperand()
				checks, ok := shadowChecks(cb, in, ptr)
				if !ok {
					st.Skipped++
					continue
				}
				before[in] = checks
				st.Protected++
			}
			if len(before) > 0 {
				defense.SpliceChecks(b, before)
				changed = true
			}
		}
		if changed {
			f.Renumber()
		}
		st.InsertedInstrs += cb.Inserted
	}
	return &defense.Result{Stats: st}, nil
}

// cloneable reports whether a chain node can be shadow-recomputed:
// address arithmetic only. Everything else (loads, phis, allocas,
// calls) is a leaf the shadow shares with the original.
func cloneable(op ir.Op) bool { return op == ir.OpGEP || op.IsIntBinary() }

// shadowChecks builds the shadow recomputation of access's address
// plus the compare-and-detect tail, all to be inserted immediately
// before access. The chain instructions dominate the access (they feed
// its pointer operand), so their leaves dominate the insertion point
// too. Returns ok=false when there is no chain to recompute.
func shadowChecks(cb *defense.CheckBuilder, access *ir.Instr, ptr ir.Value) ([]*ir.Instr, bool) {
	root, ok := ptr.(*ir.Instr)
	if !ok || !cloneable(root.Op) {
		return nil, false
	}
	saved := cb.Inserted
	line := access.Loc.Line
	var out []*ir.Instr
	clones := map[*ir.Instr]ir.Value{}
	var clone func(v ir.Value) ir.Value
	clone = func(v ir.Value) ir.Value {
		in, ok := v.(*ir.Instr)
		if !ok || !cloneable(in.Op) {
			return v // leaf: shared with the original chain
		}
		if c, ok := clones[in]; ok {
			return c
		}
		if len(out) >= maxChain {
			return nil
		}
		ops := make([]ir.Value, len(in.Ops))
		for i, o := range in.Ops {
			if ops[i] = clone(o); ops[i] == nil {
				return nil
			}
		}
		c := cb.New(in.Op, in.Typ, ops, line)
		c.Size = in.Size
		clones[in] = c
		out = append(out, c)
		return c
	}
	shadow := clone(root)
	if shadow == nil {
		cb.Inserted = saved
		return nil, false
	}
	ne := cb.New(ir.OpICmpNE, ir.I64, []ir.Value{ptr, shadow}, line)
	det := cb.Detect(ne, ptr, line)
	return append(out, ne, det), true
}

func init() { defense.Register(pass{}) }
