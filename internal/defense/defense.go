// Package defense defines the pluggable defense-pass pipeline that the
// build path (internal/core) runs between optimisation and lowering. A
// defense pass is an IR-to-IR hardening transform — CARE's armor
// (recovery-kernel extraction), PRESAGE-style protected address
// generation, SFI-style bounds sandboxing — registered here by name so
// that builds, CLIs and experiments select defenses with a plain string
// list and rival defenses run on the identical substrate.
//
// Two pass families exist:
//
//   - repair passes (CARE) leave the module untouched and emit a
//     recovery-kernel module plus an encoded recovery table; the
//     Safeguard runtime repairs the faulting access in place;
//   - detection passes (PRESAGE, SFI) insert checks into the module
//     that call the care_detect host function when they fail; the
//     machine raises a deterministic SIGTRAP that enters the Safeguard
//     escalation chain at the domain-rewind/rollback stages (there is
//     nothing to recompute — detection defenses cannot repair).
package defense

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"care/internal/ir"
)

// Options is the build context handed to every pass.
type Options struct {
	// OptLevel is the build's optimisation level (0 or 1); passes run
	// after the optimisation pipeline, so the module they see is the
	// one the code generator lowers.
	OptLevel int
	// IsLib marks a shared-library build (the defense sees
	// library-layout addresses, e.g. SFI's sandbox bounds).
	IsLib bool
	// Tuning carries pass-specific options (the CARE pass accepts an
	// armor.Options); passes ignore values of types they do not know.
	Tuning any
}

// Stats summarises one pass's run over one binary, keyed into
// core.Binary.DefenseStats by pass name.
type Stats struct {
	// Pass is the registered pass name.
	Pass string
	// NumMemAccesses is the number of load/store instructions scanned.
	NumMemAccesses int
	// Protected counts accesses the pass covers: a recovery kernel
	// registered (repair passes) or a check inserted (detection passes).
	Protected int
	// Skipped counts accesses the pass declined (direct global/alloca
	// accesses, unretrievable slices, unclassifiable pointers).
	Skipped int
	// InsertedInstrs counts IR instructions the pass added to the
	// module itself (detection passes; zero for CARE, which emits
	// kernels into a separate module instead).
	InsertedInstrs int
	// NumKernels, TotalKernelInstrs and NumEquivalences describe
	// emitted recovery kernels (repair passes only).
	NumKernels        int
	TotalKernelInstrs int
	NumEquivalences   int
	// AnalysisTime is the time spent in the pass's dominant analysis
	// (liveness for CARE); TotalTime is the end-to-end pass time.
	AnalysisTime time.Duration
	TotalTime    time.Duration
	// ProvenanceCol is the reserved negative debug column the pass
	// stamps on every instruction it inserts (0 when it inserts none).
	// care-disasm maps the column back to the pass name, making
	// bake-off binaries auditable.
	ProvenanceCol int32
}

// AvgKernelInstrs returns the mean kernel body size.
func (s Stats) AvgKernelInstrs() float64 {
	if s.NumKernels == 0 {
		return 0
	}
	return float64(s.TotalKernelInstrs) / float64(s.NumKernels)
}

// Result bundles one pass's outputs.
type Result struct {
	Stats Stats
	// Kernels is the recovery-kernel module of a repair pass (nil for
	// detection passes); core compiles it into the recovery library.
	Kernels *ir.Module
	// Table is the encoded recovery table accompanying Kernels.
	Table []byte
}

// Pass is one registered defense. Apply transforms (or analyses) the
// module in place and returns the pass's artifacts; it runs after the
// optimisation pipeline, so inserted instructions are lowered verbatim.
type Pass interface {
	// Name is the registry key ("care", "presage", "sfi", "none").
	Name() string
	// Apply runs the pass over the module.
	Apply(m *ir.Module, opt Options) (*Result, error)
}

// Detector is the optional detection hook: a pass that implements it
// (returning true) inserts care_detect checks whose failures surface as
// SIGTRAP traps handled by the Safeguard escalation chain. core marks
// such binaries so campaigns attach Safeguard even though the binary
// ships no recovery table.
type Detector interface {
	Detects() bool
}

var registry = map[string]Pass{}

// Register adds a pass to the registry (called from the pass packages'
// init functions); duplicate names are a programming error.
func Register(p Pass) {
	if _, dup := registry[p.Name()]; dup {
		panic("defense: duplicate pass " + p.Name())
	}
	registry[p.Name()] = p
}

// Names returns the registered pass names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup resolves one pass name; the error for an unknown name lists
// the registered passes (the CLIs print it verbatim and exit 2).
func Lookup(name string) (Pass, error) {
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("defense: unknown defense %q (registered: %s)", name, strings.Join(Names(), ", "))
}

// Resolve maps a defense-name list to passes, rejecting unknown and
// duplicate names. The order is preserved: passes apply in list order.
func Resolve(names []string) ([]Pass, error) {
	passes := make([]Pass, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("defense: defense %q listed twice", n)
		}
		seen[n] = true
		p, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		passes = append(passes, p)
	}
	return passes, nil
}

// ParseList splits a comma-separated -defense flag value into a name
// list ("care,presage" → ["care","presage"]); empty and "none"-only
// values mean an undefended build.
func ParseList(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// If returns names as a defense list when cond is true and nil (an
// undefended build) otherwise — ergonomic for protected/unprotected
// build grids.
func If(cond bool, names ...string) []string {
	if !cond {
		return nil
	}
	return names
}

// nonePass is the registered no-defense baseline: it scans nothing and
// changes nothing, but gives campaigns and CLIs a first-class "none"
// arm.
type nonePass struct{}

func (nonePass) Name() string { return "none" }

func (nonePass) Apply(m *ir.Module, opt Options) (*Result, error) {
	return &Result{Stats: Stats{Pass: "none"}}, nil
}

func init() { Register(nonePass{}) }
