package defense_test

import (
	"fmt"
	"testing"

	"care/internal/blas"
	"care/internal/core"
	"care/internal/defense"
	"care/internal/machine"
	"care/internal/progen"
	"care/internal/workloads"
)

// rivalLists are the defense configurations the differential suite
// checks against an undefended build: every registered pass alone plus
// the repair+detect composition.
var rivalLists = [][]string{
	{"none"},
	{"care"},
	{"presage"},
	{"sfi"},
	{"care", "presage"},
}

func listName(l []string) string {
	s := l[0]
	for _, n := range l[1:] {
		s += "+" + n
	}
	return s
}

type runOutput struct {
	status  machine.RunStatus
	exit    int64
	results []float64
	printed []string
}

func run(t *testing.T, bin *core.Binary, libs []*core.Binary, tier machine.InterpTier) runOutput {
	t.Helper()
	p, err := core.NewProcess(core.ProcessConfig{App: bin, Libs: libs, Tier: tier})
	if err != nil {
		t.Fatal(err)
	}
	status := p.Run(0)
	return runOutput{
		status:  status,
		exit:    int64(p.CPU.ExitCode),
		results: append([]float64(nil), p.Results()...),
		printed: append([]string(nil), p.Env.Printed...),
	}
}

// requireSameOutput asserts a defended run is observationally identical
// to the undefended golden run: same termination, same exit code, same
// result stream, same printed output. Dyn deliberately differs (the
// checks retire instructions).
func requireSameOutput(t *testing.T, label string, got, want runOutput) {
	t.Helper()
	if got.status != want.status {
		t.Fatalf("%s: status %v, undefended %v", label, got.status, want.status)
	}
	if got.exit != want.exit {
		t.Fatalf("%s: exit %d, undefended %d", label, got.exit, want.exit)
	}
	if len(got.results) != len(want.results) {
		t.Fatalf("%s: %d results, undefended %d", label, len(got.results), len(want.results))
	}
	for i := range got.results {
		if got.results[i] != want.results[i] {
			t.Fatalf("%s: result[%d] = %v, undefended %v", label, i, got.results[i], want.results[i])
		}
	}
	if len(got.printed) != len(want.printed) {
		t.Fatalf("%s: %d printed lines, undefended %d", label, len(got.printed), len(want.printed))
	}
	for i := range got.printed {
		if got.printed[i] != want.printed[i] {
			t.Fatalf("%s: printed[%d] = %q, undefended %q", label, i, got.printed[i], want.printed[i])
		}
	}
}

// TestDefensesPreserveWorkloadSemantics is the fault-free differential
// suite over the evaluated mini-apps: every defense configuration must
// leave golden-run output identical to the undefended build on every
// interpreter tier.
func TestDefensesPreserveWorkloadSemantics(t *testing.T) {
	for _, w := range workloads.Evaluated() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			golden, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := run(t, golden, nil, machine.TierSuperblock)
			if want.status != machine.StatusExited {
				t.Fatalf("undefended golden run did not exit: %v", want.status)
			}
			for _, defs := range rivalLists {
				bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 1, Defenses: defs})
				if err != nil {
					t.Fatalf("%s: %v", listName(defs), err)
				}
				for _, tier := range machine.Tiers() {
					label := fmt.Sprintf("%s/%s", listName(defs), tier)
					requireSameOutput(t, label, run(t, bin, nil, tier), want)
				}
			}
		})
	}
}

// TestDefensesPreserveBLASSemantics covers the shared-library build
// path (IsLib segment classification in SFI, library armor in CARE).
func TestDefensesPreserveBLASSemantics(t *testing.T) {
	glib, err := core.BuildLib(blas.Library(), 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gdrv, err := core.Build(blas.Sblat1(4), core.BuildOptions{OptLevel: 1}, glib)
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, gdrv, []*core.Binary{glib}, machine.TierSuperblock)
	if want.status != machine.StatusExited {
		t.Fatalf("undefended golden run did not exit: %v", want.status)
	}
	for _, defs := range rivalLists {
		lib, err := core.BuildLib(blas.Library(), 1, 0, defs)
		if err != nil {
			t.Fatalf("%s: lib: %v", listName(defs), err)
		}
		drv, err := core.Build(blas.Sblat1(4), core.BuildOptions{OptLevel: 1, Defenses: defs}, lib)
		if err != nil {
			t.Fatalf("%s: drv: %v", listName(defs), err)
		}
		for _, tier := range machine.Tiers() {
			label := fmt.Sprintf("%s/%s", listName(defs), tier)
			requireSameOutput(t, label, run(t, drv, []*core.Binary{lib}, tier), want)
		}
	}
}

// TestDefensesPreserveProgenSemantics sweeps generated programs — the
// adversarial IR shapes (irregular chains, odd phis) hand-written
// workloads miss.
func TestDefensesPreserveProgenSemantics(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			for _, opt := range []int{0, 1} {
				golden, err := core.Build(progen.Generate(seed, progen.Options{}), core.BuildOptions{OptLevel: opt})
				if err != nil {
					t.Fatal(err)
				}
				want := run(t, golden, nil, machine.TierStep)
				for _, defs := range rivalLists {
					bin, err := core.Build(progen.Generate(seed, progen.Options{}), core.BuildOptions{OptLevel: opt, Defenses: defs})
					if err != nil {
						t.Fatalf("O%d %s: %v", opt, listName(defs), err)
					}
					for _, tier := range machine.Tiers() {
						label := fmt.Sprintf("O%d/%s/%s", opt, listName(defs), tier)
						requireSameOutput(t, label, run(t, bin, nil, tier), want)
					}
				}
			}
		})
	}
}

// TestDetectionPassStats pins the instrumentation bookkeeping: the
// detection passes must cover accesses, insert provenance-stamped
// instructions, and mark the binary as detecting.
func TestDetectionPassStats(t *testing.T) {
	for _, name := range []string{"presage", "sfi"} {
		w, err := workloads.Get("HPCCG")
		if err != nil {
			t.Fatal(err)
		}
		bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 1, Defenses: []string{name}})
		if err != nil {
			t.Fatal(err)
		}
		s, ok := bin.DefenseStats[name]
		if !ok {
			t.Fatalf("%s: no DefenseStats entry", name)
		}
		if s.NumMemAccesses == 0 || s.Protected == 0 || s.InsertedInstrs == 0 {
			t.Fatalf("%s: empty stats %+v", name, s)
		}
		if s.ProvenanceCol >= 0 {
			t.Fatalf("%s: provenance column %d not negative", name, s.ProvenanceCol)
		}
		if defense.PassForProvenance(s.ProvenanceCol) != name {
			t.Fatalf("%s: provenance column %d does not round-trip", name, s.ProvenanceCol)
		}
		if !bin.Detects {
			t.Fatalf("%s: binary not marked as detecting", name)
		}
		if bin.Protected() {
			t.Fatalf("%s: detection-only binary carries a recovery table", name)
		}
		// SFI mediates every access; PRESAGE skips the chainless ones.
		if name == "sfi" && s.Skipped != 0 {
			t.Fatalf("sfi skipped %d accesses", s.Skipped)
		}
		undef, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(bin.Prog.Code) <= len(undef.Prog.Code) {
			t.Fatalf("%s: no binary growth (%d vs %d)", name, len(bin.Prog.Code), len(undef.Prog.Code))
		}
	}
}
