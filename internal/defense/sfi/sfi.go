// Package sfi implements software-fault-isolation-style bounds
// sandboxing as a detection-only defense pass. Every load/store is
// preceded by a range check of its address against the segment its
// pointer provably belongs to — globals, heap, library data, or stack,
// derived by walking the pointer chain to its root; unclassifiable
// roots fall back to the whole writable address space. The segment
// bounds are compile-time constants of the prelinked memory layout
// (internal/machine), so the checks are two immediate compares and an
// or. A failed check calls care_detect, which raises a deterministic
// SIGTRAP into the Safeguard escalation chain.
//
// Unlike PRESAGE, SFI mediates *every* access — including the direct
// global/alloca accesses both CARE and PRESAGE skip — but only catches
// corruption that moves the address out of its segment: a bit flip
// landing inside the same segment passes the check and surfaces as an
// SDC or a benign wrong-slot access.
package sfi

import (
	"care/internal/defense"
	"care/internal/ir"
	"care/internal/machine"
)

type pass struct{}

func (pass) Name() string { return "sfi" }

// Detects marks sfi as a detection-only defense (see presage).
func (pass) Detects() bool { return true }

// bounds is one segment's half-open address range [lo, hi).
type bounds struct{ lo, hi machine.Word }

var (
	globalBounds = bounds{machine.AppGlobalBase, machine.HeapBase}
	heapBounds   = bounds{machine.HeapBase, machine.LibCodeBase}
	libBounds    = bounds{machine.LibCodeBase, machine.ScratchStackTop - machine.ScratchStackSize}
	stackBounds  = bounds{machine.StackTop - machine.DefaultStackSize, machine.StackTop}
	// wideBounds sandboxes unclassifiable pointers into the union of
	// all data segments — still excluding code, the scratch stack and
	// the canonical-address hole above StackTop.
	wideBounds = bounds{machine.AppGlobalBase, machine.StackTop}
)

func (pass) Apply(m *ir.Module, opt defense.Options) (*defense.Result, error) {
	st := defense.Stats{Pass: "sfi", ProvenanceCol: defense.ColSFI}
	for _, f := range m.Funcs {
		cb := &defense.CheckBuilder{Prefix: "sfi", Col: defense.ColSFI}
		changed := false
		for _, b := range f.Blocks {
			before := map[*ir.Instr][]*ir.Instr{}
			for _, in := range b.Instrs {
				if !in.IsMemAccess() {
					continue
				}
				st.NumMemAccesses++
				ptr, _ := in.PointerOperand()
				before[in] = rangeChecks(cb, in, ptr, classify(ptr, opt.IsLib))
				st.Protected++
			}
			if len(before) > 0 {
				defense.SpliceChecks(b, before)
				changed = true
			}
		}
		if changed {
			f.Renumber()
		}
		st.InsertedInstrs += cb.Inserted
	}
	return &defense.Result{Stats: st}, nil
}

// classify walks ptr's chain to its root and returns the segment
// bounds the access must stay within. isLib widens global roots to the
// library data range (library globals live at library-relative
// addresses).
func classify(ptr ir.Value, isLib bool) bounds {
	for {
		switch x := ptr.(type) {
		case *ir.Global:
			if isLib {
				return libBounds
			}
			return globalBounds
		case *ir.Const:
			return machineRange(machine.Word(x.I))
		case *ir.Instr:
			switch {
			case x.Op == ir.OpAlloca:
				return stackBounds
			case x.Op == ir.OpGEP:
				ptr = x.Ops[0]
			case x.Op == ir.OpCall && x.Callee == nil && x.Host == "malloc":
				return heapBounds
			case x.Op.IsIntBinary():
				// Pointer arithmetic outside GEP: follow the single
				// pointer-typed operand if there is exactly one.
				var p ir.Value
				n := 0
				for _, o := range x.Ops {
					if o.Type() == ir.Ptr {
						p, n = o, n+1
					}
				}
				if n != 1 {
					return wideBounds
				}
				ptr = p
			default:
				// load, phi, non-malloc call: could point anywhere.
				return wideBounds
			}
		default:
			// function argument or unknown value kind.
			return wideBounds
		}
	}
}

// machineRange places a constant address into its segment.
func machineRange(addr machine.Word) bounds {
	for _, b := range []bounds{globalBounds, heapBounds, libBounds, stackBounds} {
		if addr >= b.lo && addr < b.hi {
			return b
		}
	}
	return wideBounds
}

// rangeChecks builds the two-compare bounds check for one access: trap
// if ptr < lo or ptr > hi-8 (the access reads/writes an 8-byte word).
// Addresses are below 2^47, so signed compares are exact.
func rangeChecks(cb *defense.CheckBuilder, access *ir.Instr, ptr ir.Value, b bounds) []*ir.Instr {
	line := access.Loc.Line
	below := cb.New(ir.OpICmpSLT, ir.I64, []ir.Value{ptr, ir.ConstInt(int64(b.lo))}, line)
	above := cb.New(ir.OpICmpSGT, ir.I64, []ir.Value{ptr, ir.ConstInt(int64(b.hi - 8))}, line)
	bad := cb.New(ir.OpOr, ir.I64, []ir.Value{below, above}, line)
	det := cb.Detect(bad, ptr, line)
	return []*ir.Instr{below, above, bad, det}
}

func init() { defense.Register(pass{}) }
