package defense

import (
	"fmt"

	"care/internal/ir"
)

// Reserved provenance columns. Every instruction a detection pass
// inserts carries Loc{Line: <access line>, Col: <pass column>}; the
// columns are negative so they can never collide with real source
// columns (the frontends emit columns >= 1) and care-disasm can map
// them back to the inserting pass.
const (
	ColPresage int32 = -2
	ColSFI     int32 = -3
)

// PassForProvenance maps a provenance column back to the pass name
// ("" for columns no pass reserves).
func PassForProvenance(col int32) string {
	switch col {
	case ColPresage:
		return "presage"
	case ColSFI:
		return "sfi"
	}
	return ""
}

// CheckBuilder mints uniquely named check instructions for one
// function. Prefix must be distinct from the frontends' "v%d"/"t%d"
// naming so inserted names never collide with existing SSA names.
type CheckBuilder struct {
	Prefix string
	Col    int32
	seq    int
	// Inserted counts instructions minted so far (feeds
	// Stats.InsertedInstrs).
	Inserted int
}

// New mints one named instruction stamped with the pass's provenance
// column and the guarded access's source line.
func (cb *CheckBuilder) New(op ir.Op, typ ir.Type, ops []ir.Value, line int32) *ir.Instr {
	in := &ir.Instr{
		Op:   op,
		Typ:  typ,
		Ops:  ops,
		Name: fmt.Sprintf("%s%d", cb.Prefix, cb.seq),
		Loc:  ir.Loc{Line: line, Col: cb.Col},
	}
	cb.seq++
	cb.Inserted++
	return in
}

// Detect mints the terminal care_detect host call: cond nonzero means
// the check failed and the executor raises SIGTRAP carrying addr.
func (cb *CheckBuilder) Detect(cond, addr ir.Value, line int32) *ir.Instr {
	in := cb.New(ir.OpCall, ir.I64, []ir.Value{cond, addr}, line)
	in.Host = "care_detect"
	return in
}

// SpliceChecks rebuilds b.Instrs with each insertion list placed
// immediately before its keyed instruction. Iteration follows block
// order, so the result is deterministic regardless of map order.
func SpliceChecks(b *ir.Block, before map[*ir.Instr][]*ir.Instr) {
	if len(before) == 0 {
		return
	}
	extra := 0
	for _, pre := range before {
		extra += len(pre)
	}
	out := make([]*ir.Instr, 0, len(b.Instrs)+extra)
	for _, in := range b.Instrs {
		if pre, ok := before[in]; ok {
			for _, p := range pre {
				p.Parent = b
			}
			out = append(out, pre...)
		}
		out = append(out, in)
	}
	b.Instrs = out
}
