// Package fbits converts float64 streams to and from raw IEEE-754 bit
// patterns. Every layer that persists or ships floats — the shard wire
// protocol, the content-addressed store's manifests — goes through
// these two functions, because encoding/json rejects NaN/Inf and a
// decimal round trip is not guaranteed bit-exact, while the substrate's
// byte-identity contracts require exactly the bits the golden run
// produced.
package fbits

import "math"

// Of returns the IEEE-754 bit pattern of every element (nil in, nil out).
func Of(fs []float64) []uint64 {
	if fs == nil {
		return nil
	}
	bs := make([]uint64, len(fs))
	for i, f := range fs {
		bs[i] = math.Float64bits(f)
	}
	return bs
}

// Floats inverts Of (nil in, nil out).
func Floats(bs []uint64) []float64 {
	if bs == nil {
		return nil
	}
	fs := make([]float64, len(bs))
	for i, b := range bs {
		fs[i] = math.Float64frombits(b)
	}
	return fs
}
