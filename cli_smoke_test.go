// CLI smoke tests: build the user-facing binaries and run each on a
// tiny workload, asserting the output is non-empty and parseable. These
// catch flag-wiring and output-format regressions that the package
// tests (which call the experiment drivers directly) cannot see.
package care

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"care/internal/trace"
)

// buildCLIs compiles the named commands into a temp dir and returns the
// binary paths keyed by command name.
func buildCLIs(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	args := []string{"build", "-o", dir + string(os.PathSeparator)}
	for _, n := range names {
		args = append(args, "./cmd/"+n)
		bin := filepath.Join(dir, n)
		if runtime.GOOS == "windows" {
			bin += ".exe"
		}
		bins[n] = bin
	}
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bins
}

// runCLI executes a built binary and returns its stdout.
func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String()
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildCLIs(t, "care-inject", "care-trace", "care-report")
	traceOut := filepath.Join(t.TempDir(), "campaign.jsonl")

	t.Run("care-inject", func(t *testing.T) {
		out := runCLI(t, bins["care-inject"],
			"-workload", "HPCCG", "-n", "5", "-trace-out", traceOut)
		for _, want := range []string{"Table 2-style", "Table 3-style", "Table 4-style", "HPCCG"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in output:\n%s", want, out)
			}
		}
		f, err := os.Open(traceOut)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rec, err := trace.ReadJSONL(f)
		if err != nil {
			t.Fatalf("trace-out is not valid JSONL: %v", err)
		}
		if rec.Len() < 5 {
			t.Errorf("trace has %d spans, want at least one per trial (5)", rec.Len())
		}
		if rec.Counter("campaign.outcome.Benign")+rec.Counter("campaign.outcome.SoftFailure")+
			rec.Counter("campaign.outcome.SDC")+rec.Counter("campaign.outcome.Hang") != 5 {
			t.Errorf("outcome counters do not sum to the trial count: %v", rec.CounterNames())
		}
	})

	t.Run("care-trace", func(t *testing.T) {
		out := runCLI(t, bins["care-trace"], "-workload", "HPCCG", "-n", "5")
		for _, want := range []string{"outcomes by corrupted unit", "propagation extent"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in output:\n%s", want, out)
			}
		}
	})

	t.Run("care-report", func(t *testing.T) {
		out := runCLI(t, bins["care-report"],
			"-sections", "census,outcomes", "-n", "5", "-workers", "2")
		for _, want := range []string{"# CARE reproduction report", "Table 5-style", "Table 2-style"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in output:\n%s", want, out)
			}
		}
		if strings.Contains(out, "Figure 10") {
			t.Error("-sections did not filter out the parallel study")
		}
	})
}
