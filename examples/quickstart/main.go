// Quickstart: build a tiny stencil program with CARE, flip a bit in the
// index register of a protected load mid-run, and watch Safeguard repair
// the SIGSEGV and let the program finish with correct output.
package main

import (
	"fmt"
	"log"

	"care/internal/core"
	"care/internal/ir"
	"care/internal/irbuild"
	"care/internal/machine"
)

// buildProgram constructs:
//
//	table[i] initialised to 3*i
//	sum = Σ data[table[i] % len(data)]   (an indirect, multi-op access)
func buildProgram() *ir.Module {
	m := ir.NewModule("quickstart")
	table := m.AddGlobal(&ir.Global{Name: "table", Size: 16 * 8,
		InitI64: []int64{0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 33, 36, 39, 42, 45}})
	data := m.AddGlobal(&ir.Global{Name: "data", Size: 32 * 8})

	b := ir.NewBuilder(m)
	fb := irbuild.New(b)
	b.NewFunc("main", ir.I64)

	fb.ForN(irbuild.I(0), irbuild.I(32), 1, func(i ir.Value) {
		fb.NewLine()
		fb.StoreAt(fb.FMul(fb.IToF(i), irbuild.F(1.5)), data, i)
	})
	sum := fb.For(irbuild.I(0), irbuild.I(16), 1, []ir.Value{irbuild.F(0)},
		func(i ir.Value, c []ir.Value) []ir.Value {
			fb.NewLine()
			t := fb.LoadAt(ir.I64, table, i)
			idx := fb.SRem(t, irbuild.I(32))
			v := fb.LoadAt(ir.F64, data, idx) // the protected access
			return []ir.Value{fb.FAdd(c[0], v)}
		})
	fb.Result(sum[0])
	fb.Ret(irbuild.I(0))
	return m
}

func main() {
	// 1. Compile with CARE: the Armor pass builds one recovery kernel
	//    per protected memory access and a recovery table.
	bin, err := core.Build(buildProgram(), core.BuildOptions{OptLevel: 1, Defenses: []string{"care"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: %d machine instructions, %d recovery kernels (avg %.1f IR instrs)\n",
		bin.Name, len(bin.Prog.Code), bin.DefenseStats["care"].NumKernels, bin.DefenseStats["care"].AvgKernelInstrs())
	fmt.Printf("recovery table: %d bytes, recovery library: %d bytes\n\n",
		len(bin.RecoveryTable), len(bin.RecoveryLib))

	// 2. Golden run (no fault).
	gold, err := core.NewProcess(core.ProcessConfig{App: bin})
	if err != nil {
		log.Fatal(err)
	}
	gold.Run(0)
	fmt.Printf("golden result: %v\n", gold.Results())

	// 3. Protected run with a transient fault: right before the indexed
	//    data load executes, flip bit 43 of its index register —
	//    exactly what a particle strike in the ALU would do.
	p, err := core.NewProcess(core.ProcessConfig{App: bin, Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	var target machine.Word
	for i := range bin.Prog.Code {
		in := &bin.Prog.Code[i]
		if in.Op == machine.MFLoad && in.Index != machine.NoReg && in.Line != 0 {
			target = bin.Prog.AddrOf(i)
			fmt.Printf("fault target: %s @0x%x\n", machine.Disassemble(in), target)
			break
		}
	}
	flipped := false
	p.CPU.AfterStep = func(c *machine.CPU, img *machine.Image, idx int, in *machine.MInstr) {
		if !flipped && c.PC == target && c.Dyn > 200 {
			flipped = true
			mi := img.Prog.Code[(target-img.Base())/8]
			c.R[mi.Index] ^= 1 << 43
			fmt.Printf("injected: bit 43 flipped in %s at dyn=%d\n", mi.Index, c.Dyn)
		}
	}
	st := p.Run(0)

	// 4. Report.
	fmt.Printf("\nrun status: %v\n", st)
	for _, ev := range p.SG.Events() {
		fmt.Printf("safeguard: %s at pc=0x%x addr=0x%x in %v (prep %v, kernel %v)\n",
			ev.Outcome, ev.PC, ev.Addr, ev.Total(), ev.Prep(), ev.Kernel)
	}
	fmt.Printf("result with recovered fault: %v\n", p.Results())
	if len(p.Results()) == 1 && p.Results()[0] == gold.Results()[0] {
		fmt.Println("output matches golden run — the transient fault was fully masked")
	} else {
		fmt.Println("OUTPUT MISMATCH — recovery failed")
	}
}
