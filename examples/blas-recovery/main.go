// blas-recovery: the paper's §5.5 library scenario. libblas (the twelve
// REAL level-1 routines) is built as a CARE-protected shared library,
// the sblat1 driver links against it, and faults injected into *library*
// code are recovered through the library's own recovery table — located
// via the faulting PC's image, the dladdr mechanism of §4.
package main

import (
	"fmt"
	"log"

	"care/internal/blas"
	"care/internal/core"
	"care/internal/faultinject"
)

func main() {
	lib, err := core.BuildLib(blas.Library(), 0, 0, []string{"care"})
	if err != nil {
		log.Fatal(err)
	}
	drv, err := core.Build(blas.Sblat1(5), core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}}, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("libblas: %d routines, %d kernels, table %dB, library image at 0x%x\n",
		len(blas.RoutineNames), lib.DefenseStats["care"].NumKernels, len(lib.RecoveryTable), lib.Prog.CodeBase)
	fmt.Printf("sblat1:  %d kernels, app image at 0x%x\n\n",
		drv.DefenseStats["care"].NumKernels, drv.Prog.CodeBase)

	// Inject only into library code: this is what requires rebuilding
	// the library with CARE (footnote 3 of the paper).
	exp := &faultinject.CoverageExperiment{
		App: drv, Libs: []*core.Binary{lib},
		TargetImages: []string{"libblas"},
		Trials:       30, Seed: 77,
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faults in libblas code: %d SIGSEGV trials, %.1f%% recovered, mean recovery %v\n",
		res.SigsegvTrials, 100*res.Coverage(), res.MeanRecoveryTime())

	// And the combined driver+library experiment of Table 9.
	both := &faultinject.CoverageExperiment{
		App: drv, Libs: []*core.Binary{lib},
		TargetImages: []string{"sblat1", "libblas"},
		Trials:       30, Seed: 78,
	}
	bres, err := both.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faults across both images: %.1f%% recovered (paper reports 83%%)\n", 100*bres.Coverage())
}
