// cluster-resilience: the paper's §5.4 story end to end. An MPI job runs
// HPCCG across N ranks; a transient fault strikes rank 0 mid-run. With
// CARE the job finishes with a sub-millisecond stall; without CARE the
// job dies and the checkpoint/restart baseline pays seconds of requeue,
// I/O and recomputation.
package main

import (
	"flag"
	"fmt"
	"log"

	"care/internal/checkpoint"
	"care/internal/cluster"
	"care/internal/core"
	"care/internal/workloads"
)

func main() {
	ranks := flag.Int("ranks", 8, "MPI ranks (512 reproduces the paper's 3072 cores with 6 threads/rank)")
	flag.Parse()

	w, err := workloads.Get("HPCCG")
	if err != nil {
		log.Fatal(err)
	}
	params := workloads.Params{NX: 5, NY: 5, NZ: 4, Steps: 15}
	bin, err := core.Build(w.Module(params), core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		log.Fatal(err)
	}
	inj, err := cluster.FindRecoverableInjection(bin, 31, cluster.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := cluster.Config{Workload: "HPCCG", Ranks: *ranks, ThreadsPerRank: 6, Protected: true}

	base, err := cluster.RunJob(cfg, bin, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free job on %d cores: %v virtual time (%d instructions on the slowest rank)\n",
		base.Cores, base.VirtualTime, base.MaxDyn)

	faulty, err := cluster.RunJob(cfg, bin, inj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job with fault at rank 0 + CARE: %v (stall %v, %d repair(s), survived=%v)\n",
		faulty.VirtualTime, faulty.RecoveryStall, faulty.Recoveries, faulty.Completed)
	delta := float64(faulty.VirtualTime-base.VirtualTime) / float64(base.VirtualTime) * 100
	fmt.Printf("delay vs fault-free: %.3f%%\n\n", delta)

	// The C/R baseline for the same class of fault (GTC-P, as in §5.4).
	gtcp, err := workloads.Get("GTC-P")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint/restart baseline (GTC-P, fault at step 66):")
	for _, interval := range []int{20, 50, 75} {
		r, err := cluster.RunCheckpointRestart(gtcp, workloads.Params{Steps: 80, NParticles: 80},
			0, interval, 66, checkpoint.DefaultCostModel(), 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  checkpoint every %2d steps: recovery %v (requeue %v + read %v + recompute %v), verified=%v\n",
			interval, r.RecoveryTotal, r.Requeue, r.RestartRead, r.Recompute, r.Verified)
	}
}
