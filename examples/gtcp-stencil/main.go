// gtcp-stencil: the paper's motivating scenario (Figures 1, 2 and 6).
// Builds the GTC-P mini-app, prints the recovery kernel Armor extracts
// for the phitmp[(mzeta+1)*(igrid[i]-igrid_in)+k] charge-deposition
// access, and runs a small coverage experiment on it.
package main

import (
	"fmt"
	"log"

	"care/internal/armor"
	"care/internal/core"
	"care/internal/faultinject"
	"care/internal/workloads"
)

func main() {
	w, err := workloads.Get("GTC-P")
	if err != nil {
		log.Fatal(err)
	}
	mod := w.Module(workloads.Params{})

	// Run Armor alone to look at the kernels it extracts.
	ares, err := armor.Run(mod, armor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTC-P: %d memory accesses, %d recovery kernels (avg %.2f IR instructions)\n",
		ares.Stats.NumMemAccesses, ares.Stats.NumKernels, ares.Stats.AvgKernelInstrs())
	fmt.Printf("armor time %v (%.0f%% in liveness analysis)\n\n",
		ares.Stats.TotalTime, 100*float64(ares.Stats.LivenessTime)/float64(ares.Stats.TotalTime))

	// Show the kernel with the most parameters — the deep stencil
	// address computation of the charge-deposition loop.
	best := -1
	for i, e := range ares.Table.Entries {
		if best == -1 || len(e.Params) > len(ares.Table.Entries[best].Params) {
			best = i
		}
	}
	e := ares.Table.Entries[best]
	fmt.Printf("largest kernel: %s in function %q with parameters", e.Symbol, e.Func)
	for _, p := range e.Params {
		fmt.Printf(" %s", p.Name)
	}
	fmt.Println()
	if kf := ares.Kernels.Func(e.Symbol); kf != nil {
		fmt.Println(kf.String())
	}

	// Build fully and measure recovery on this workload.
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{OptLevel: 0, Defenses: []string{"care"}})
	if err != nil {
		log.Fatal(err)
	}
	exp := &faultinject.CoverageExperiment{App: bin, Trials: 30, Seed: 11}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage on %d SIGSEGV faults: %.1f%% recovered, mean recovery %v (prep %.1f%%)\n",
		res.SigsegvTrials, 100*res.Coverage(), res.MeanRecoveryTime(), 100*res.PrepFraction())
	for oc, n := range res.FailureOutcomes {
		fmt.Printf("  unrecovered due to %s: %d\n", oc, n)
	}
}
