// Package care is a from-scratch reproduction of "CARE:
// Compiler-Assisted Recovery from Soft Failures" (Chen, Eisenhauer,
// Pande, Guan — SC '19) as a pure-Go simulation stack.
//
// The paper's system repairs processes that crash with SIGSEGV after a
// transient fault corrupts an address computation: a compiler pass
// (Armor) clones every memory access's address computation into a
// recovery kernel, and a runtime (Safeguard) intercepts the fault,
// recomputes the address from uncorrupted values, patches the faulting
// operand and resumes.
//
// Because the original is an LLVM pass plus a Linux/x86_64 signal
// handler, this reproduction supplies the entire substrate itself: a
// miniature SSA IR and compiler (O0/O1), a simulated CPU with
// x86-style memory operands and resumable traps, DWARF-style debug
// info, the five scientific mini-apps of the paper's Table 1, a BLAS
// level-1 library, fault injectors, an MPI/cluster simulator, and a
// checkpoint/restart baseline. See DESIGN.md for the full inventory
// and EXPERIMENTS.md for the reproduced tables and figures.
//
// The package tree is internal/...; the runnable entry points are the
// cmd/ tools and examples/ programs, and the benchmarks in this
// directory regenerate each table and figure of the paper.
package care
