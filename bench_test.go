// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of CARE's design choices. Each benchmark
// runs a (scaled-down) experiment per iteration and reports the paper's
// headline metric through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation; the cmd/ tools run the same drivers
// at larger sample sizes.
package care

import (
	"testing"

	"care/internal/armor"
	"care/internal/checkpoint"
	"care/internal/cluster"
	"care/internal/core"
	"care/internal/experiments"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/workloads"
)

const benchSeed = 1234

// BenchmarkTable2OutcomeMix reproduces Table 2 (and 3/4, which share the
// campaign): the outcome mix of single-bit-flip injections.
func BenchmarkTable2OutcomeMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OutcomeStudy([]string{"HPCCG"}, 60, 1, faultinject.SingleBit, benchSeed, 0, workloads.Params{}, experiments.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		o := rows[0].Res.Outcomes
		total := float64(o[faultinject.Benign] + o[faultinject.SoftFailure] + o[faultinject.SDC] + o[faultinject.Hang])
		b.ReportMetric(100*float64(o[faultinject.SoftFailure])/total, "softfail-%")
		b.ReportMetric(100*float64(o[faultinject.SDC])/total, "sdc-%")
	}
}

// BenchmarkTable3Symptoms reports the SIGSEGV share of soft failures.
func BenchmarkTable3Symptoms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OutcomeStudy([]string{"miniMD"}, 60, 1, faultinject.SingleBit, benchSeed, 0, workloads.Params{}, experiments.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0].Res
		soft := r.Outcomes[faultinject.SoftFailure]
		if soft > 0 {
			b.ReportMetric(100*float64(r.Symptoms[machine.SigSEGV])/float64(soft), "sigsegv-%")
		}
	}
}

// BenchmarkTable4Latency reports the fraction of soft failures
// manifesting within 50 dynamic instructions.
func BenchmarkTable4Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OutcomeStudy([]string{"GTC-P"}, 60, 1, faultinject.SingleBit, benchSeed, 0, workloads.Params{}, experiments.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		bk := rows[0].Res.LatencyBuckets()
		tot := bk[0] + bk[1] + bk[2] + bk[3]
		if tot > 0 {
			b.ReportMetric(100*float64(bk[0]+bk[1])/float64(tot), "within50-%")
		}
	}
}

// BenchmarkTable5AddressCensus reproduces the census.
func BenchmarkTable5AddressCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.CensusStudy(workloads.Params{})
		var s float64
		for _, r := range rows {
			s += r.PctMulti()
		}
		b.ReportMetric(s/float64(len(rows)), "multiop-%")
	}
}

// BenchmarkTable8ArmorStats measures Armor's compile-time overhead.
func BenchmarkTable8ArmorStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ArmorStudy(0, workloads.Params{}, true)
		if err != nil {
			b.Fatal(err)
		}
		var kernels int
		for _, r := range rows {
			kernels += r.Kernels
		}
		b.ReportMetric(float64(kernels), "kernels")
	}
}

func coverageBench(b *testing.B, name string, opt int, model faultinject.Model, cfg safeguard.Config) *faultinject.CoverageResult {
	b.Helper()
	bin, err := experiments.BuildWorkload(name, workloads.Params{}, opt, []string{"care"})
	if err != nil {
		b.Fatal(err)
	}
	exp := &faultinject.CoverageExperiment{App: bin, Trials: 25, Model: model, Seed: benchSeed, Safeguard: cfg}
	res, err := exp.Run()
	if err != nil && res == nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFigure7Coverage reproduces the coverage bars.
func BenchmarkFigure7Coverage(b *testing.B) {
	for _, name := range experiments.EvaluatedNames() {
		for _, opt := range []int{0, 1} {
			b.Run(name+"/O"+string(rune('0'+opt)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := coverageBench(b, name, opt, faultinject.SingleBit, safeguard.Config{})
					b.ReportMetric(100*res.Coverage(), "coverage-%")
				}
			})
		}
	}
}

// BenchmarkFigure9RecoveryTime reports mean recovery time and the
// preparation share (the paper reports >98% preparation).
func BenchmarkFigure9RecoveryTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := coverageBench(b, "HPCCG", 0, faultinject.SingleBit, safeguard.Config{})
		b.ReportMetric(float64(res.MeanRecoveryTime().Nanoseconds()), "ns/recovery")
		b.ReportMetric(100*res.PrepFraction(), "prep-%")
	}
}

// BenchmarkFigure10Parallel reproduces the parallel-job comparison.
func BenchmarkFigure10Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ParallelStudy([]string{"HPCCG"}, 8, 6, 0,
			workloads.Params{NX: 5, NY: 5, NZ: 4, Steps: 12}, benchSeed, experiments.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		delta := 100 * float64(r.Faulty.VirtualTime-r.Base.VirtualTime) / float64(r.Base.VirtualTime)
		b.ReportMetric(delta, "job-delay-%")
	}
}

// BenchmarkCheckpointRestartBaseline reproduces the §5.4 C/R costs.
func BenchmarkCheckpointRestartBaseline(b *testing.B) {
	w, err := workloads.Get("GTC-P")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := cluster.RunCheckpointRestart(w, workloads.Params{Steps: 40, NParticles: 60},
			0, 10, 33, checkpoint.DefaultCostModel(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.RecoveryTotal.Milliseconds()), "cr-recovery-ms")
	}
}

// BenchmarkTable9BLAS reproduces the library experiment.
func BenchmarkTable9BLAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := experiments.BLASStudy(25, 0, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*row.Coverage, "coverage-%")
	}
}

// BenchmarkTable10DoubleFlip reproduces the appendix outcome table.
func BenchmarkTable10DoubleFlip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OutcomeStudy([]string{"CoMD"}, 60, 1, faultinject.DoubleBit, benchSeed, 0, workloads.Params{}, experiments.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		o := rows[0].Res.Outcomes
		total := float64(o[faultinject.Benign] + o[faultinject.SoftFailure] + o[faultinject.SDC] + o[faultinject.Hang])
		b.ReportMetric(100*float64(o[faultinject.SoftFailure])/total, "softfail-%")
	}
}

// BenchmarkTable11DoubleFlipSymptoms reports the double-flip SIGSEGV
// share.
func BenchmarkTable11DoubleFlipSymptoms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OutcomeStudy([]string{"CoMD"}, 60, 1, faultinject.DoubleBit, benchSeed, 0, workloads.Params{}, experiments.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0].Res
		if soft := r.Outcomes[faultinject.SoftFailure]; soft > 0 {
			b.ReportMetric(100*float64(r.Symptoms[machine.SigSEGV])/float64(soft), "sigsegv-%")
		}
	}
}

// BenchmarkFigure12DoubleFlipCoverage reproduces the appendix coverage.
func BenchmarkFigure12DoubleFlipCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := coverageBench(b, "HPCCG", 0, faultinject.DoubleBit, safeguard.Config{})
		b.ReportMetric(100*res.Coverage(), "coverage-%")
	}
}

// BenchmarkGoldenRun measures raw golden-run throughput — the paper's
// experiments all sit on top of fault-free replays, so this is the
// constant every campaign's wall-clock divides by. It runs HPCCG (the
// 27-point stencil matrix build plus the CG sparse matrix-vector loop)
// end to end at O0 and O1 on all three interpreter tiers: the default
// fused superblock engine, the per-µop block engine, and the legacy
// per-instruction Step loop. The tier ratios are the engines' speedups;
// CI uploads the output as BENCH_interp.json.
func BenchmarkGoldenRun(b *testing.B) {
	for _, opt := range []int{0, 1} {
		bin, err := experiments.BuildWorkload("HPCCG", workloads.Params{}, opt, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, tier := range machine.Tiers() {
			b.Run("O"+string(rune('0'+opt))+"/"+tier.String(), func(b *testing.B) {
				var dyn uint64
				for i := 0; i < b.N; i++ {
					p, err := core.NewProcess(core.ProcessConfig{App: bin, Tier: tier})
					if err != nil {
						b.Fatal(err)
					}
					if st := p.Run(0); st != machine.StatusExited {
						b.Fatalf("golden run: %v", st)
					}
					dyn += p.CPU.Dyn
				}
				b.ReportMetric(float64(dyn)/b.Elapsed().Seconds()/1e6, "Minstr/s")
			})
		}
	}
}

// BenchmarkSafeguardIdleOverhead is the §5.2 zero-runtime-overhead
// claim: a protected fault-free run vs an unprotected one.
func BenchmarkSafeguardIdleOverhead(b *testing.B) {
	prot, err := experiments.BuildWorkload("HPCCG", workloads.Params{}, 0, []string{"care"})
	if err != nil {
		b.Fatal(err)
	}
	for _, protected := range []bool{false, true} {
		name := "unprotected"
		if protected {
			name = "protected"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := core.NewProcess(core.ProcessConfig{App: prot, Protected: protected})
				if err != nil {
					b.Fatal(err)
				}
				if st := p.Run(0); st != machine.StatusExited {
					b.Fatalf("run: %v", st)
				}
			}
		})
	}
}

// BenchmarkAblationPatchRule compares the index-register patch rule
// against always patching the base register.
func BenchmarkAblationPatchRule(b *testing.B) {
	for _, base := range []bool{false, true} {
		name := "patch-index"
		if base {
			name = "patch-base"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := coverageBench(b, "GTC-P", 0, faultinject.SingleBit, safeguard.Config{PatchBase: base})
				b.ReportMetric(100*res.Coverage(), "coverage-%")
			}
		})
	}
}

// BenchmarkAblationLiveness disables Armor's Terminal Value liveness
// restriction: kernels get registered whose parameters may be
// unfetchable, shifting failures from out-of-scope to
// param-unavailable and lowering coverage.
func BenchmarkAblationLiveness(b *testing.B) {
	for _, ignore := range []bool{false, true} {
		name := "liveness-on"
		if ignore {
			name = "liveness-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workloads.Get("CoMD")
				if err != nil {
					b.Fatal(err)
				}
				bin, err := core.Build(w.Module(workloads.Params{}),
					core.BuildOptions{OptLevel: 1, Defenses: []string{"care"}, Armor: armor.Options{IgnoreLiveness: ignore}})
				if err != nil {
					b.Fatal(err)
				}
				exp := &faultinject.CoverageExperiment{App: bin, Trials: 25, Seed: benchSeed}
				res, err := exp.Run()
				if err != nil && res == nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.Coverage(), "coverage-%")
				b.ReportMetric(float64(res.FailureOutcomes[safeguard.ParamUnavailable]), "param-unavail")
			}
		})
	}
}

// BenchmarkAblationLazyLoad compares lazy (per-fault) loading of the
// recovery table/library against keeping them resident.
func BenchmarkAblationLazyLoad(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := coverageBench(b, "HPCCG", 0, faultinject.SingleBit, safeguard.Config{Eager: eager})
				b.ReportMetric(float64(res.MeanRecoveryTime().Nanoseconds()), "ns/recovery")
			}
		})
	}
}

// BenchmarkAblationScopeCheck measures what the LetGo-style heuristic
// fallback does to output integrity: survivals rise but SDCs appear —
// the paper's argument for the coverage-scope check.
func BenchmarkAblationScopeCheck(b *testing.B) {
	for _, heuristic := range []bool{false, true} {
		name := "faithful"
		if heuristic {
			name = "heuristic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := coverageBench(b, "HPCCG", 0, faultinject.SingleBit, safeguard.Config{Heuristic: heuristic})
				b.ReportMetric(float64(res.Recovered), "survived")
				b.ReportMetric(float64(res.Recovered-res.CleanRecovered), "sdc-after-recovery")
			}
		})
	}
}

// BenchmarkExtensionInductionRecovery measures the Figure-11 future-work
// extension implemented in this reproduction: reconstructing corrupted
// induction variables from affine siblings. BLAS's strided level-1
// loops (i, ix, iy advancing in lockstep) are the natural beneficiary.
func BenchmarkExtensionInductionRecovery(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "paper-baseline"
		if on {
			name = "with-induction-recovery"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := experiments.BLASStudy2(30, 0, benchSeed, safeguard.Config{InductionRecovery: on})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*row.Coverage, "coverage-%")
			}
		})
	}
}

// BenchmarkCampaignTraceOff is the overhead guard for the trace spine:
// a fault-injection campaign with tracing disabled must stay within a
// few percent of what it cost before the spine existed (the no-op
// recorder is a nil pointer, so the step path must not allocate — see
// machine.TestStepWithNilTraceDoesNotAllocate). Compare against
// BenchmarkCampaignTraceOn to read off the cost of enabling it.
func BenchmarkCampaignTraceOff(b *testing.B) {
	benchmarkCampaignTrace(b, false)
}

// BenchmarkCampaignTraceOn measures the same campaign with the
// per-trial trace recorders and the deterministic merge enabled.
func BenchmarkCampaignTraceOn(b *testing.B) {
	benchmarkCampaignTrace(b, true)
}

func benchmarkCampaignTrace(b *testing.B, traced bool) {
	w, err := workloads.Get("HPCCG")
	if err != nil {
		b.Fatal(err)
	}
	bin, err := core.Build(w.Module(workloads.Params{}), core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := (&faultinject.Campaign{
			App: bin, N: 60, Model: faultinject.SingleBit, Seed: benchSeed, Trace: traced,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		if traced && res.Trace.Len() == 0 {
			b.Fatal("traced campaign produced no spans")
		}
	}
}
