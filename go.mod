module care

go 1.22
