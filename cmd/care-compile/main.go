// Command care-compile builds every workload with the Armor pass and
// prints the Table 8 statistics: recovery-kernel counts and sizes,
// normal compilation time, and Armor overhead (dominated by liveness
// analysis, as in the paper).
package main

import (
	"flag"
	"fmt"
	"log"

	"care/internal/experiments"
	"care/internal/workloads"
)

func main() {
	opt := flag.Int("opt", 0, "optimisation level (0 or 1)")
	all := flag.Bool("all", false, "include miniFE (not part of the paper's Table 8)")
	flag.Parse()
	rows, err := experiments.ArmorStudy(*opt, workloads.Params{}, !*all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatArmor(rows))
}
