// Command care-compile builds every workload with a defense pipeline
// and prints its build statistics. The default -defense care prints the
// Table 8 statistics: recovery-kernel counts and sizes, normal
// compilation time, and Armor overhead (dominated by liveness analysis,
// as in the paper). Any other -defense list (comma-separated registered
// pass names, e.g. presage or care,presage) prints the policy-agnostic
// per-pass instrumentation table instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"care/internal/defense"
	"care/internal/experiments"
	"care/internal/workloads"
)

func main() {
	opt := flag.Int("opt", 0, "optimisation level (0 or 1)")
	all := flag.Bool("all", false, "include miniFE (not part of the paper's Table 8)")
	def := flag.String("defense", "care", "comma-separated defense passes to build with (registered: "+
		fmt.Sprint(defense.Names())+")")
	flag.Parse()

	defs := defense.ParseList(*def)
	if _, err := defense.Resolve(defs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(defs) == 1 && defs[0] == "care" {
		rows, err := experiments.ArmorStudy(*opt, workloads.Params{}, !*all)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatArmor(rows))
		return
	}
	rows, err := experiments.DefenseBuildStudy(defs, *opt, workloads.Params{}, !*all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatDefenseBuild(rows))
}
