// Command care-analyze prints the Table 5 address-computation census:
// how many memory accesses in each workload involve multiple binary
// operations in their address calculation, and how many on average —
// the structural property that makes CARE's recovery kernels effective.
package main

import (
	"flag"
	"fmt"

	"care/internal/experiments"
	"care/internal/workloads"
)

func main() {
	flag.Parse()
	fmt.Print(experiments.FormatCensus(experiments.CensusStudy(workloads.Params{})))
}
