// Command care-coverage runs the §5.2/§5.3 evaluation: SIGSEGV-leading
// fault injections recovered by Safeguard. It prints the Figure 7
// coverage bars and the Figure 9 recovery times at both optimisation
// levels; -model double reproduces Figure 12 and -blas reproduces
// Table 9.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"care/internal/experiments"
	"care/internal/faultinject"
	"care/internal/safeguard"
	"care/internal/workloads"
)

func main() {
	trials := flag.Int("trials", 100, "SIGSEGV trials per workload/opt (paper: 1000-2000)")
	model := flag.String("model", "single", "fault model: single or double")
	workload := flag.String("workload", "all", "workload name or 'all' (evaluated set)")
	seed := flag.Int64("seed", 1, "random seed")
	blasMode := flag.Bool("blas", false, "run the Table 9 BLAS/sblat1 experiment instead")
	eager := flag.Bool("eager", false, "ablation: keep table+library resident (vs lazy load)")
	patchBase := flag.Bool("patch-base", false, "ablation: patch base register instead of index")
	heuristic := flag.Bool("heuristic", false, "ablation: LetGo-style bit-bucket fallback")
	induction := flag.Bool("induction", false, "extension: Figure-11 induction-variable recovery")
	workers := flag.Int("workers", 0, "concurrent injection workers (0 = one per CPU; results are identical for any value)")
	flag.Parse()

	m := faultinject.SingleBit
	if *model == "double" {
		m = faultinject.DoubleBit
	}
	cfg := safeguard.Config{Eager: *eager, PatchBase: *patchBase, Heuristic: *heuristic, InductionRecovery: *induction}

	if *blasMode {
		row, err := experiments.BLASStudy2(*trials, 0, *seed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatBLAS(row))
		return
	}
	names := experiments.EvaluatedNames()
	if *workload != "all" {
		if _, err := workloads.Get(*workload); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		names = []string{*workload}
	}
	rows, err := experiments.CoverageStudy(names, *trials, m, *seed, workloads.Params{}, cfg, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatCoverage(rows))
}
