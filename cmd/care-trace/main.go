// Command care-trace runs the §2 fault-propagation study: injections
// with taint tracking, reporting how far each fault spreads before the
// run ends and how outcomes split by the corrupted unit (the paper's
// ALU-vs-FPU observation).
//
// Usage:
//
//	care-trace [-workload HPCCG] [-n 200] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"care/internal/experiments"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/workloads"
)

func main() {
	workload := flag.String("workload", "HPCCG", "workload name")
	n := flag.Int("n", 200, "injections")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	bin, err := experiments.BuildWorkload(*workload, workloads.Params{}, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&faultinject.Campaign{
		App: bin, N: *n, Model: faultinject.SingleBit, Seed: *seed,
		TrackPropagation: true,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d injections with propagation tracking\n\n", *workload, *n)
	fmt.Printf("outcomes by corrupted unit (§2.1.2):\n")
	fmt.Printf("%-12s %8s %13s %8s %6s\n", "unit", "Benign", "SoftFailure", "SDC", "Hang")
	for _, k := range []machine.DestKind{machine.DestIntReg, machine.DestFloatReg, machine.DestMemory} {
		o := res.ByDest[k]
		fmt.Printf("%-12s %8d %13d %8d %6d\n", faultinject.DestName(k),
			o[faultinject.Benign], o[faultinject.SoftFailure], o[faultinject.SDC], o[faultinject.Hang])
	}

	// Propagation-extent distribution per outcome.
	byOutcome := map[faultinject.Outcome][]int{}
	for _, inj := range res.Injections {
		byOutcome[inj.Outcome] = append(byOutcome[inj.Outcome], inj.PropagationWrites)
	}
	fmt.Printf("\npropagation extent (tainted writes) by outcome:\n")
	fmt.Printf("%-13s %6s %8s %8s %8s\n", "outcome", "count", "median", "p90", "max")
	for _, oc := range []faultinject.Outcome{faultinject.Benign, faultinject.SoftFailure, faultinject.SDC, faultinject.Hang} {
		xs := byOutcome[oc]
		if len(xs) == 0 {
			continue
		}
		sort.Ints(xs)
		fmt.Printf("%-13s %6d %8d %8d %8d\n", oc, len(xs),
			xs[len(xs)/2], xs[len(xs)*9/10], xs[len(xs)-1])
	}

	// Crash latency vs propagation for soft failures.
	var fastCrash, totalSoft int
	for _, inj := range res.Injections {
		if inj.Outcome != faultinject.SoftFailure {
			continue
		}
		totalSoft++
		if inj.Latency <= 50 {
			fastCrash++
		}
	}
	if totalSoft > 0 {
		fmt.Printf("\nsoft failures manifesting within 50 instructions: %d/%d (%.1f%%)\n",
			fastCrash, totalSoft, 100*float64(fastCrash)/float64(totalSoft))
	}
}
