// Command care-disasm inspects what CARE builds: it compiles a workload
// (or libblas) under a defense list and dumps the machine code, the
// recovery table, and the recovery kernels — the artifacts the paper's
// Figures 1, 4 and 6 are about. With a detection defense (-defense
// presage or sfi), -code annotates every instruction the pass inserted
// with its name (provenance from the reserved negative debug columns),
// so bake-off binaries are auditable.
//
// Usage:
//
//	care-disasm -workload GTC-P [-opt 1] [-defense care] [-kernels] [-code] [-table]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"care/internal/armor"
	"care/internal/blas"
	"care/internal/core"
	"care/internal/defense"
	"care/internal/ir"
	"care/internal/machine"
	"care/internal/rtable"
	"care/internal/workloads"
)

func main() {
	workload := flag.String("workload", "GTC-P", "workload name or 'blas'")
	opt := flag.Int("opt", 0, "optimisation level")
	def := flag.String("defense", "care", "comma-separated defense passes to build with (registered: "+
		fmt.Sprint(defense.Names())+")")
	showCode := flag.Bool("code", false, "dump machine code (defense-inserted instructions annotated by pass)")
	showKernels := flag.Bool("kernels", true, "dump recovery-kernel IR")
	showTable := flag.Bool("table", true, "dump the recovery table")
	maxKernels := flag.Int("n", 5, "kernels/entries to print (0 = all)")
	flag.Parse()

	defs := defense.ParseList(*def)
	if _, err := defense.Resolve(defs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var mod *ir.Module
	if *workload == "blas" {
		mod = blas.Library()
	} else {
		w, err := workloads.Get(*workload)
		if err != nil {
			log.Fatal(err)
		}
		mod = w.Module(workloads.Params{})
	}

	bin, err := core.Build(mod, core.BuildOptions{OptLevel: *opt, Defenses: defs, IsLib: *workload == "blas"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (O%d): %d machine instructions\n", bin.Name, *opt, len(bin.Prog.Code))
	for _, name := range defs {
		s := bin.DefenseStats[name]
		fmt.Printf("  %-8s %d/%d accesses covered, %d inserted instrs, %d kernels (avg %.2f IR instrs), %d equivalences\n",
			name, s.Protected, s.NumMemAccesses, s.InsertedInstrs,
			s.NumKernels, s.AvgKernelInstrs(), s.NumEquivalences)
	}

	if *showTable && bin.Protected() {
		tab, err := rtable.Decode(bin.RecoveryTable)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nrecovery table: %d entries (%d bytes encoded)\n", len(tab.Entries), len(bin.RecoveryTable))
		for i, e := range tab.Entries {
			if *maxKernels > 0 && i >= *maxKernels {
				fmt.Printf("  ... %d more\n", len(tab.Entries)-i)
				break
			}
			fmt.Printf("  %x -> %s in %s(", e.Key[:6], e.Symbol, e.Func)
			for j, p := range e.Params {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Print(p.Name)
				if len(p.Equivs) > 0 {
					fmt.Printf("[%d equiv]", len(p.Equivs))
				}
			}
			fmt.Println(")")
		}
	}

	if *showKernels && bin.Protected() {
		// Re-run Armor to get the kernel IR in readable form.
		ares, err := armor.Run(bin.Module, armor.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nrecovery kernels (IR):")
		n := 0
		for _, f := range ares.Kernels.Funcs {
			if len(f.Blocks) == 0 {
				continue
			}
			fmt.Println(f.String())
			n++
			if *maxKernels > 0 && n >= *maxKernels {
				fmt.Printf("... %d more kernels\n", ares.Stats.NumKernels-n)
				break
			}
		}
	}

	if *showCode {
		fmt.Println()
		fmt.Println(machine.DisassembleProgramAnnotated(bin.Prog, func(line, col int32) string {
			pass := defense.PassForProvenance(col)
			if pass == "" {
				return ""
			}
			return fmt.Sprintf("!%d:%d %s-inserted", line, col, pass)
		}))
	}
}
