// Command care-inject runs the §2 fault-injection manifestation study
// and prints Tables 2, 3 and 4 (or, with -model double, the appendix
// Tables 10 and 11). With -domain-rewind it instead runs the
// domain-rewind escalation-policy campaign on protected builds and
// prints the policy-study table.
//
// Usage:
//
//	care-inject [-n 1000] [-faults 1] [-model single|double] [-workload all|NAME] [-opt 0] [-seed 1] [-workers 0] [-domains] [-domain-rewind] [-max-rollbacks 0] [-max-domain-rewinds 0] [-trace-out FILE] [-warmstart] [-snap-every N] [-interp superblock|block|step] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"care/internal/experiments"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/trace"
	"care/internal/workloads"
)

func main() {
	n := flag.Int("n", 400, "injections per workload (the paper used 10000)")
	faults := flag.Int("faults", 1, "independent faults armed per trial (multi-fault model; 1 = paper setup)")
	model := flag.String("model", "single", "fault model: single or double bit flips")
	workload := flag.String("workload", "all", "workload name or 'all'")
	opt := flag.Int("opt", 0, "optimisation level (0 or 1)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent injection workers (0 = one per CPU; results are identical for any value)")
	domains := flag.Bool("domains", false, "attribute memory-symptom soft failures to isolation domains (adds the crash-geography table)")
	domainRewind := flag.Bool("domain-rewind", false, "run the domain-rewind escalation-policy campaign on protected builds instead of the manifestation study")
	maxRollbacks := flag.Int("max-rollbacks", 0, "whole-process rollback budget per process (0 = default of 2; domain-rewind mode)")
	maxDomainRewinds := flag.Int("max-domain-rewinds", 0, "domain-rewind budget per domain (0 = default of 2; domain-rewind mode)")
	traceOut := flag.String("trace-out", "", "write the merged campaign trace as JSONL to this file (Rank = workload index)")
	warmStart := flag.Bool("warmstart", false, "clone trials from golden-run snapshots instead of replaying the fault-free prefix (results are identical)")
	snapEvery := flag.Uint64("snap-every", 0, "golden-run snapshot cadence in dynamic instructions (0 = TotalDyn/64+1; only with -warmstart)")
	interp := flag.String("interp", "superblock", "interpreter tier for trial processes: superblock (fused engine), block (per-µop engine) or step (legacy per-instruction loop; results are identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	tier, err := machine.ParseInterpTier(*interp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	m := faultinject.SingleBit
	switch *model {
	case "single":
	case "double":
		m = faultinject.DoubleBit
	default:
		fmt.Fprintln(os.Stderr, "unknown -model; want single or double")
		os.Exit(2)
	}
	// One shared validation point for the escalation budgets (the same
	// Policy.Validate care-cluster uses).
	pol := safeguard.Policy{MaxRollbacks: *maxRollbacks, MaxDomainRewinds: *maxDomainRewinds}
	if err := pol.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := experiments.AllNames()
	if *workload != "all" {
		if _, err := workloads.Get(*workload); err != nil {
			log.Fatal(err)
		}
		names = []string{*workload}
	}

	if *domainRewind {
		// Domain-rewind policy campaign: multi-fault trials on protected
		// builds, with the full escalation chain ending in domain rewind
		// before whole-process rollback.
		spec := experiments.DomainRewindSpec(pol)
		rows, err := experiments.PolicyStudy(names, *n, *faults, m, *seed, *opt,
			workloads.Params{}, []experiments.PolicySpec{spec},
			experiments.StudyOptions{Workers: *workers, Tier: tier})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatPolicyStudy(rows))
		if *traceOut != "" {
			total := 0
			for _, r := range rows {
				total += r.Res.Trace.Len()
			}
			merged := trace.New(total)
			for i, r := range rows {
				merged.MergeAs(r.Res.Trace, int32(i))
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := merged.WriteJSONL(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", merged.Len(), *traceOut)
		}
		return
	}

	rows, err := experiments.OutcomeStudy(names, *n, *faults, m, *seed, *opt, workloads.Params{}, experiments.StudyOptions{
		Workers:   *workers,
		Traced:    *traceOut != "" || *domains,
		WarmStart: *warmStart,
		SnapEvery: *snapEvery,
		Tier:      tier,
		Domains:   *domains,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatOutcomeTables(rows))

	if *warmStart {
		// Warm-start accounting goes to stderr so stdout stays
		// byte-identical to a cold run (the CI smoke diffs it).
		var snaps, warm int
		var skipped uint64
		for _, r := range rows {
			if ws := r.Res.WarmStart; ws != nil {
				snaps += ws.Snapshots
				warm += ws.WarmTrials
				skipped += ws.SkippedDyn
			}
		}
		fmt.Fprintf(os.Stderr, "campaign.warmstart.skipped-dyn=%d (snapshots=%d, warm-trials=%d)\n", skipped, snaps, warm)
	}

	if *traceOut != "" {
		total := 0
		for _, r := range rows {
			total += r.Res.Trace.Len()
		}
		merged := trace.New(total)
		for i, r := range rows {
			merged.MergeAs(r.Res.Trace, int32(i))
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := merged.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", merged.Len(), *traceOut)
	}
}
