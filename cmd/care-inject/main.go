// Command care-inject runs the §2 fault-injection manifestation study
// and prints Tables 2, 3 and 4 (or, with -model double, the appendix
// Tables 10 and 11). With -domain-rewind it instead runs the
// domain-rewind escalation-policy campaign on protected builds and
// prints the policy-study table. With -defense it builds the workloads
// under the given defense list (comma-separated registered pass names,
// e.g. care, presage, sfi or care,presage) and runs that single
// bake-off arm through an identical campaign, printing the
// defense-study tables.
//
// Usage:
//
//	care-inject [-n 1000] [-faults 1] [-model single|double] [-workload all|NAME] [-opt 0] [-seed 1] [-workers 0] [-defense LIST] [-domains] [-domain-rewind] [-max-rollbacks 0] [-max-domain-rewinds 0] [-trace-out FILE] [-store DIR] [-warmstart] [-snap-every N] [-interp superblock|block|step] [-shards 1] [-shard-cmd CMD] [-progress] [-cpuprofile FILE] [-memprofile FILE]
//
// With -store DIR campaigns consult a persistent content-addressed
// artifact store: golden-run profiles (snapshots + sealed .text) are
// cached under a key derived from the campaign configuration, so a
// second identical run skips the golden run entirely, and every
// campaign trace is sealed (Merkle root over per-trial leaves) into
// the store for care-report -trace-in/-diff. Cache hits, misses and
// deduplicated bytes are reported on stderr; stdout stays
// byte-identical to a run without -store.
//
// With -shards N (N > 1) the manifestation study splits every
// campaign's trial index space over N worker subprocesses (the shard
// coordinator; workers default to this binary re-executed with
// -shard-serve) and merges the streamed results in trial order — the
// tables and -trace-out JSONL are byte-identical to a single-process
// run (wall-clock fields aside), which the CI determinism job diffs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"care/internal/defense"
	"care/internal/experiments"
	"care/internal/faultinject"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/shard"
	"care/internal/store"
	"care/internal/trace"
	"care/internal/workloads"
)

// heartbeat returns a rate-limited stderr progress callback (the
// -progress flag). Campaign workers call it concurrently, so it
// serialises on a mutex; it never touches stdout or the traces.
func heartbeat(unit string) func(done, total int) {
	var mu sync.Mutex
	start := time.Now()
	var last time.Time
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done < total && now.Sub(last) < 2*time.Second {
			return
		}
		last = now
		el := now.Sub(start).Seconds()
		if el <= 0 {
			return
		}
		rate := float64(done) / el
		line := fmt.Sprintf("progress: %d/%d %s (%.1f/s", done, total, unit, rate)
		if rate > 0 && done < total {
			eta := time.Duration(float64(total-done) / rate * float64(time.Second))
			line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, line+")")
	}
}

// shardExecArgv resolves the worker argv for -shards: an explicit
// -shard-cmd, or this binary re-executed in -shard-serve mode.
func shardExecArgv(shardCmd string) []string {
	if shardCmd != "" {
		return strings.Fields(shardCmd)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	return []string{exe, "-shard-serve"}
}

// writeTrace merges the per-row campaign traces (Rank = row index) and
// writes them as JSONL.
func writeTrace(path string, traces []*trace.Recorder) {
	total := 0
	for _, tr := range traces {
		total += tr.Len()
	}
	merged := trace.New(total)
	for i, tr := range traces {
		merged.MergeAs(tr, int32(i))
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := merged.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", merged.Len(), path)
}

func main() {
	n := flag.Int("n", 400, "injections per workload (the paper used 10000)")
	faults := flag.Int("faults", 1, "independent faults armed per trial (multi-fault model; 1 = paper setup)")
	model := flag.String("model", "single", "fault model: single or double bit flips")
	workload := flag.String("workload", "all", "workload name or 'all'")
	opt := flag.Int("opt", 0, "optimisation level (0 or 1)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent injection workers (0 = one per CPU; results are identical for any value)")
	def := flag.String("defense", "", "run one defense-study arm instead of the manifestation study: comma-separated defense passes (registered: "+strings.Join(defense.Names(), ", ")+")")
	domains := flag.Bool("domains", false, "attribute memory-symptom soft failures to isolation domains (adds the crash-geography table)")
	domainRewind := flag.Bool("domain-rewind", false, "run the domain-rewind escalation-policy campaign on protected builds instead of the manifestation study")
	maxRollbacks := flag.Int("max-rollbacks", 0, "whole-process rollback budget per process (0 = default of 2; domain-rewind mode)")
	maxDomainRewinds := flag.Int("max-domain-rewinds", 0, "domain-rewind budget per domain (0 = default of 2; domain-rewind mode)")
	traceOut := flag.String("trace-out", "", "write the merged campaign trace as JSONL to this file (Rank = workload index)")
	storeDir := flag.String("store", "", "persistent artifact store directory: cache golden-run profiles across runs (a second identical campaign skips the golden run) and seal per-campaign traces; results stay byte-identical")
	warmStart := flag.Bool("warmstart", false, "clone trials from golden-run snapshots instead of replaying the fault-free prefix (results are identical)")
	snapEvery := flag.Uint64("snap-every", 0, "golden-run snapshot cadence in dynamic instructions (0 = TotalDyn/64+1; only with -warmstart)")
	interp := flag.String("interp", "superblock", "interpreter tier for trial processes: superblock (fused engine), block (per-µop engine) or step (legacy per-instruction loop; results are identical)")
	shards := flag.Int("shards", 1, "split each campaign's trial index space over this many worker subprocesses (results are byte-identical for any value)")
	shardCmd := flag.String("shard-cmd", "", "worker command for -shards, space-separated (default: this binary with -shard-serve)")
	shardServe := flag.Bool("shard-serve", false, "run as a shard worker: speak the length-prefixed frame protocol on stdin/stdout (internal; spawned by -shards)")
	progress := flag.Bool("progress", false, "periodic heartbeat on stderr (trials done, rate, ETA); never written to stdout or traces")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *shardServe {
		if err := shard.Serve(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shards > 1 && (*def != "" || *domainRewind) {
		fmt.Fprintln(os.Stderr, "-shards is not supported with -defense or -domain-rewind")
		os.Exit(2)
	}

	// The artifact store is an accelerator, never an authority: campaigns
	// consult it for cached golden-run profiles and fall back to a cold
	// run on any mismatch; stdout stays byte-identical either way.
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatal(err)
		}
		defer func() { fmt.Fprintln(os.Stderr, st.StatsLine()) }()
	}

	tier, err := machine.ParseInterpTier(*interp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defs := defense.ParseList(*def)
	if _, err := defense.Resolve(defs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	m := faultinject.SingleBit
	switch *model {
	case "single":
	case "double":
		m = faultinject.DoubleBit
	default:
		fmt.Fprintln(os.Stderr, "unknown -model; want single or double")
		os.Exit(2)
	}
	// One shared validation point for the escalation budgets (the same
	// Policy.Validate care-cluster uses).
	pol := safeguard.Policy{MaxRollbacks: *maxRollbacks, MaxDomainRewinds: *maxDomainRewinds}
	if err := pol.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := experiments.AllNames()
	if *def != "" && *workload == "all" {
		names = experiments.DefenseNames()
	}
	if *workload != "all" {
		// "BLAS" is the defense study's shared-library target, not a
		// registered workload.
		if !(*def != "" && *workload == "BLAS") {
			if _, err := workloads.Get(*workload); err != nil {
				log.Fatal(err)
			}
		}
		names = []string{*workload}
	}

	if *def != "" {
		// Single bake-off arm: identical campaign machinery to the
		// manifestation study, but on builds defended by the given list.
		arm := experiments.DefenseArm{Name: strings.Join(defs, "+"), Defenses: defs}
		cells, err := experiments.DefenseStudyArms(names, []experiments.DefenseArm{arm},
			*n, m, *seed, *opt, workloads.Params{}, experiments.StudyOptions{
				Workers:   *workers,
				Traced:    *traceOut != "",
				WarmStart: *warmStart,
				SnapEvery: *snapEvery,
				Tier:      tier,
				Store:     st,
			}, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatDefenseStudy(cells))
		if *traceOut != "" {
			traces := make([]*trace.Recorder, len(cells))
			for i := range cells {
				traces[i] = cells[i].Res.Trace
			}
			writeTrace(*traceOut, traces)
		}
		return
	}

	if *domainRewind {
		// Domain-rewind policy campaign: multi-fault trials on protected
		// builds, with the full escalation chain ending in domain rewind
		// before whole-process rollback.
		spec := experiments.DomainRewindSpec(pol)
		rows, err := experiments.PolicyStudy(names, *n, *faults, m, *seed, *opt,
			workloads.Params{}, []experiments.PolicySpec{spec},
			experiments.StudyOptions{Workers: *workers, Tier: tier})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatPolicyStudy(rows))
		if *traceOut != "" {
			traces := make([]*trace.Recorder, len(rows))
			for i := range rows {
				traces[i] = rows[i].Res.Trace
			}
			writeTrace(*traceOut, traces)
		}
		return
	}

	sopts := experiments.StudyOptions{
		Workers:   *workers,
		Traced:    *traceOut != "" || *domains || st != nil,
		WarmStart: *warmStart,
		SnapEvery: *snapEvery,
		Tier:      tier,
		Domains:   *domains,
		Shards:    *shards,
		Store:     st,
	}
	if *shards > 1 {
		sopts.ShardExec = shardExecArgv(*shardCmd)
	}
	if *progress {
		sopts.Progress = heartbeat("trials")
	}
	rows, err := experiments.OutcomeStudy(names, *n, *faults, m, *seed, *opt, workloads.Params{}, sopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatOutcomeTables(rows))

	if *warmStart {
		// Warm-start accounting goes to stderr so stdout stays
		// byte-identical to a cold run (the CI smoke diffs it).
		var snaps, warm int
		var skipped uint64
		for _, r := range rows {
			if ws := r.Res.WarmStart; ws != nil {
				snaps += ws.Snapshots
				warm += ws.WarmTrials
				skipped += ws.SkippedDyn
			}
		}
		fmt.Fprintf(os.Stderr, "campaign.warmstart.skipped-dyn=%d (snapshots=%d, warm-trials=%d)\n", skipped, snaps, warm)
	}

	if st != nil {
		// Seal every campaign trace into the store (traces/<keyID>.jsonl
		// + Merkle seal), keyed exactly like the golden-run manifest so
		// the inventory row joins profile, snapshots and seal. The seal
		// is what care-report -diff localises divergence with.
		keyOpts := sopts
		if !keyOpts.WarmStart {
			keyOpts.SnapEvery = 0
		}
		for _, r := range rows {
			key := experiments.CampaignKey("campaign", r.Workload, workloads.Params{}, *opt, nil, *seed, keyOpts)
			if _, err := st.PutTrace(key, r.Res.Trace); err != nil {
				fmt.Fprintf(os.Stderr, "store: seal %s: %v\n", r.Workload, err)
			}
		}
	}

	if *traceOut != "" {
		traces := make([]*trace.Recorder, len(rows))
		for i := range rows {
			traces[i] = rows[i].Res.Trace
		}
		writeTrace(*traceOut, traces)
	}
}
