// Command care-cluster reproduces the parallel-job experiments: the
// Figure 10 comparison (an N-rank job with a CARE-recovered fault at
// rank 0 finishes with almost no delay) and the §5.4 checkpoint/restart
// baseline for GTC-P (-cr).
//
// The paper's configuration is -ranks 512 -threads 6 (3072 cores); the
// default here is a smaller job that runs in seconds.
package main

import (
	"flag"
	"fmt"
	"log"

	"care/internal/experiments"
	"care/internal/workloads"
)

func main() {
	ranks := flag.Int("ranks", 8, "MPI ranks (paper: 512)")
	threads := flag.Int("threads", 6, "threads per rank (core accounting)")
	opt := flag.Int("opt", 0, "optimisation level")
	seed := flag.Int64("seed", 1, "seed for the recoverable-injection search")
	workload := flag.String("workload", "all", "workload name or 'all' (evaluated set)")
	cr := flag.Bool("cr", false, "run the checkpoint/restart baseline instead")
	crSteps := flag.Int("cr-steps", 80, "GTC-P steps for the C/R experiment")
	crFault := flag.Int("cr-fault", 66, "step at which the fault kills the unprotected job")
	flag.Parse()

	if *cr {
		rows, err := experiments.CRStudy([]int{20, 50, 75}, *crSteps, *crFault, workloads.Params{NParticles: 80})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCR(rows, 0))
		return
	}
	names := experiments.EvaluatedNames()
	if *workload != "all" {
		names = []string{*workload}
	}
	rows, err := experiments.ParallelStudy(names, *ranks, *threads, *opt,
		workloads.Params{NX: 5, NY: 5, NZ: 4, Steps: 12}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatParallel(rows))
}
