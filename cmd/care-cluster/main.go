// Command care-cluster reproduces the parallel-job experiments: the
// Figure 10 comparison (an N-rank job with a CARE-recovered fault at
// rank 0 finishes with almost no delay) and the §5.4 checkpoint/restart
// baseline for GTC-P (-cr).
//
// The paper's configuration is -ranks 512 -threads 6 (3072 cores); the
// default here is a smaller job that runs in seconds. -interp selects
// the interpreter tier for every rank (superblock, block or step);
// rank results and trace spans are identical on every tier — only the
// measured wall_ns fields differ.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"care/internal/checkpoint"
	"care/internal/experiments"
	"care/internal/machine"
	"care/internal/safeguard"
	"care/internal/shard"
	"care/internal/store"
	"care/internal/trace"
	"care/internal/workloads"
)

// heartbeat returns a rate-limited stderr progress callback (the
// -progress flag): the superstep scheduler reports exited-rank counts
// through it. Serialised on a mutex; never touches stdout or traces.
func heartbeat(unit string) func(done, total int) {
	var mu sync.Mutex
	start := time.Now()
	var last time.Time
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done < total && now.Sub(last) < 2*time.Second {
			return
		}
		last = now
		el := now.Sub(start).Seconds()
		if el <= 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "progress: %d/%d %s (%.0fs elapsed)\n", done, total, unit, el)
	}
}

// writeTrace dumps a merged recorder as JSONL.
func writeTrace(path string, rec *trace.Recorder) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", rec.Len(), path)
}

func main() {
	ranks := flag.Int("ranks", 8, "MPI ranks (paper: 512)")
	threads := flag.Int("threads", 6, "threads per rank (core accounting)")
	opt := flag.Int("opt", 0, "optimisation level")
	seed := flag.Int64("seed", 1, "seed for the recoverable-injection search")
	workers := flag.Int("workers", 0, "goroutines simulating ranks per scheduler superstep (0 = one per CPU; job results are identical for any value)")
	workload := flag.String("workload", "all", "workload name or 'all' (evaluated set)")
	cr := flag.Bool("cr", false, "run the checkpoint/restart baseline instead")
	crSteps := flag.Int("cr-steps", 80, "GTC-P steps for the C/R experiment")
	crFault := flag.Int("cr-fault", 66, "step at which the fault kills the unprotected job")
	traceOut := flag.String("trace-out", "", "write the faulty-job traces (or C/R store traces) as JSONL to this file")
	storeDir := flag.String("store", "", "persistent artifact store directory: cache the recoverable-injection search's golden-run profiles across runs and attempts; job results stay identical")
	domainRewind := flag.Bool("domain-rewind", false, "arm every rank's escalation chain with the domain-rewind stage (checkpoint store + per-domain partial rollback)")
	domains := flag.Bool("domains", false, "print per-domain rewind counters from the faulty-job traces on stderr")
	maxRollbacks := flag.Int("max-rollbacks", 0, "whole-process rollback budget per rank (0 = default of 2; with -domain-rewind)")
	maxDomainRewinds := flag.Int("max-domain-rewinds", 0, "domain-rewind budget per domain per rank (0 = default of 2; with -domain-rewind)")
	warmStart := flag.Bool("warmstart", false, "warm-start the recoverable-injection search from golden-run snapshots (results are identical)")
	snapEvery := flag.Uint64("snap-every", 0, "golden-run snapshot cadence in dynamic instructions (0 = TotalDyn/64+1; only with -warmstart)")
	interp := flag.String("interp", "superblock", "interpreter tier for every rank: superblock (fused engine), block (per-µop engine) or step (legacy per-instruction loop; results are identical)")
	shards := flag.Int("shards", 1, "split the recoverable-injection search over this many worker subprocesses (the found injection is identical for any value)")
	shardCmd := flag.String("shard-cmd", "", "worker command for -shards, space-separated (default: this binary with -shard-serve)")
	shardServe := flag.Bool("shard-serve", false, "run as a shard worker: speak the length-prefixed frame protocol on stdin/stdout (internal; spawned by -shards)")
	progress := flag.Bool("progress", false, "periodic heartbeat on stderr (ranks exited per scheduler superstep); never written to stdout or traces")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *shardServe {
		if err := shard.Serve(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	tier, err := machine.ParseInterpTier(*interp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *cr {
		rows, err := experiments.CRStudy([]int{20, 50, 75}, *crSteps, *crFault, workloads.Params{NParticles: 80})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCR(rows, 0))
		if *traceOut != "" {
			merged := trace.New(trace.DefaultSpanCap)
			for i, r := range rows {
				merged.MergeAs(r.Trace, int32(i))
			}
			writeTrace(*traceOut, merged)
		}
		return
	}
	names := experiments.EvaluatedNames()
	if *workload != "all" {
		names = []string{*workload}
	}
	opts := experiments.StudyOptions{Workers: *workers, WarmStart: *warmStart, SnapEvery: *snapEvery, Tier: tier, Shards: *shards}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = st
		defer func() { fmt.Fprintln(os.Stderr, st.StatsLine()) }()
	}
	if *shards > 1 {
		if *shardCmd != "" {
			opts.ShardExec = strings.Fields(*shardCmd)
		} else {
			exe, err := os.Executable()
			if err != nil {
				log.Fatal(err)
			}
			opts.ShardExec = []string{exe, "-shard-serve"}
		}
	}
	if *progress {
		opts.Progress = heartbeat("ranks")
	}
	// Same shared validation point as care-inject (satellite of the
	// budget plumbing): reject negative budgets before any rank runs.
	pol := safeguard.Policy{MaxRollbacks: *maxRollbacks, MaxDomainRewinds: *maxDomainRewinds}
	if err := pol.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *domainRewind {
		spec := experiments.DomainRewindSpec(pol)
		opts.Safeguard = spec.Safeguard
		opts.CheckpointEveryResults = spec.CheckpointEveryResults
		opts.CheckpointModel = checkpoint.DefaultCostModel()
	}
	rows, err := experiments.ParallelStudy(names, *ranks, *threads, *opt,
		workloads.Params{NX: 5, NY: 5, NZ: 4, Steps: 12}, *seed, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatParallel(rows))
	if *domains {
		// Per-domain rewind attribution, derived from the faulty-job
		// traces; stderr so stdout stays diffable against a run without
		// the flag.
		for _, r := range rows {
			for d := machine.DomainID(0); d < machine.NumDomains; d++ {
				if n := r.Faulty.Trace.Counter(safeguard.DomainRewindCounter(d)); n > 0 {
					fmt.Fprintf(os.Stderr, "%s: %s=%d\n", r.Workload, safeguard.DomainRewindCounter(d), n)
				}
			}
		}
	}
	if *traceOut != "" {
		// Per-rank attribution lives in the span Rank fields already, so
		// plain Merge keeps it intact across workloads.
		total := 0
		for _, r := range rows {
			total += r.Faulty.Trace.Len()
		}
		merged := trace.New(total)
		for _, r := range rows {
			merged.Merge(r.Faulty.Trace)
		}
		writeTrace(*traceOut, merged)
	}
}
