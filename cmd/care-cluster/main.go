// Command care-cluster reproduces the parallel-job experiments: the
// Figure 10 comparison (an N-rank job with a CARE-recovered fault at
// rank 0 finishes with almost no delay) and the §5.4 checkpoint/restart
// baseline for GTC-P (-cr).
//
// The paper's configuration is -ranks 512 -threads 6 (3072 cores); the
// default here is a smaller job that runs in seconds. -interp selects
// the interpreter tier for every rank (superblock, block or step);
// rank results and trace spans are identical on every tier — only the
// measured wall_ns fields differ.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"care/internal/experiments"
	"care/internal/machine"
	"care/internal/trace"
	"care/internal/workloads"
)

// writeTrace dumps a merged recorder as JSONL.
func writeTrace(path string, rec *trace.Recorder) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", rec.Len(), path)
}

func main() {
	ranks := flag.Int("ranks", 8, "MPI ranks (paper: 512)")
	threads := flag.Int("threads", 6, "threads per rank (core accounting)")
	opt := flag.Int("opt", 0, "optimisation level")
	seed := flag.Int64("seed", 1, "seed for the recoverable-injection search")
	workload := flag.String("workload", "all", "workload name or 'all' (evaluated set)")
	cr := flag.Bool("cr", false, "run the checkpoint/restart baseline instead")
	crSteps := flag.Int("cr-steps", 80, "GTC-P steps for the C/R experiment")
	crFault := flag.Int("cr-fault", 66, "step at which the fault kills the unprotected job")
	traceOut := flag.String("trace-out", "", "write the faulty-job traces (or C/R store traces) as JSONL to this file")
	warmStart := flag.Bool("warmstart", false, "warm-start the recoverable-injection search from golden-run snapshots (results are identical)")
	snapEvery := flag.Uint64("snap-every", 0, "golden-run snapshot cadence in dynamic instructions (0 = TotalDyn/64+1; only with -warmstart)")
	interp := flag.String("interp", "superblock", "interpreter tier for every rank: superblock (fused engine), block (per-µop engine) or step (legacy per-instruction loop; results are identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	tier, err := machine.ParseInterpTier(*interp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *cr {
		rows, err := experiments.CRStudy([]int{20, 50, 75}, *crSteps, *crFault, workloads.Params{NParticles: 80})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCR(rows, 0))
		if *traceOut != "" {
			merged := trace.New(trace.DefaultSpanCap)
			for i, r := range rows {
				merged.MergeAs(r.Trace, int32(i))
			}
			writeTrace(*traceOut, merged)
		}
		return
	}
	names := experiments.EvaluatedNames()
	if *workload != "all" {
		names = []string{*workload}
	}
	rows, err := experiments.ParallelStudy(names, *ranks, *threads, *opt,
		workloads.Params{NX: 5, NY: 5, NZ: 4, Steps: 12}, *seed,
		experiments.StudyOptions{WarmStart: *warmStart, SnapEvery: *snapEvery, Tier: tier})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatParallel(rows))
	if *traceOut != "" {
		// Per-rank attribution lives in the span Rank fields already, so
		// plain Merge keeps it intact across workloads.
		total := 0
		for _, r := range rows {
			total += r.Faulty.Trace.Len()
		}
		merged := trace.New(total)
		for _, r := range rows {
			merged.Merge(r.Faulty.Trace)
		}
		writeTrace(*traceOut, merged)
	}
}
